"""The query model: validation, identity, and the pure-payload contract."""

import json

import pytest

from repro.serving import (
    PAYLOAD_VERSION,
    Query,
    QueryError,
    QueryJob,
    canonical_json_bytes,
    compute_payload,
    query_from_dict,
    run_query_job,
)

from .conftest import WORKLOAD


def test_query_key_is_stable_and_configuration_sensitive():
    a = Query(kind="markers", workload="x")
    b = Query(kind="markers", workload="x")
    assert a.key() == b.key()
    # every selection knob is part of the identity
    assert a.key() != Query(kind="markers", workload="x", ilower=5_000).key()
    assert a.key() != Query(kind="markers", workload="x", max_limit=10).key()
    assert a.key() != Query(kind="profile", workload="x").key()
    assert a.key() != Query(kind="markers", workload="y").key()


def test_canonical_json_bytes_is_order_insensitive():
    assert canonical_json_bytes({"b": 1, "a": [2, 3]}) == canonical_json_bytes(
        {"a": [2, 3], "b": 1}
    )


def test_query_from_dict_accepts_defaults():
    query = query_from_dict({"kind": "markers", "workload": WORKLOAD})
    assert query == Query(kind="markers", workload=WORKLOAD)


@pytest.mark.parametrize(
    "doc",
    [
        {"kind": "markers"},  # missing workload
        {"workload": WORKLOAD},  # missing kind
        {"kind": "markers", "workload": WORKLOAD, "extra": 1},  # unknown field
        {"kind": "cpi", "workload": WORKLOAD},  # unknown kind
        {"kind": "markers", "workload": "nope"},  # unknown workload
        {"kind": "markers", "workload": WORKLOAD, "which": "nope"},
        {"kind": "markers", "workload": WORKLOAD, "ilower": "10"},  # str
        {"kind": "markers", "workload": WORKLOAD, "ilower": True},  # bool
        {"kind": "markers", "workload": WORKLOAD, "ilower": 0},
        {"kind": "markers", "workload": WORKLOAD, "max_limit": -1},
        {"kind": "stream", "workload": WORKLOAD, "window": -1},
        {"kind": "markers", "workload": WORKLOAD, "window": 4},  # not stream
        {"kind": 3, "workload": WORKLOAD},
        "not an object",
    ],
)
def test_query_from_dict_rejects_malformed(doc):
    with pytest.raises(QueryError):
        query_from_dict(doc)


def test_payload_is_a_pure_function_of_the_query():
    query = Query(kind="markers", workload=WORKLOAD)
    assert compute_payload(query) == compute_payload(query)


def test_cache_hit_and_miss_payloads_are_byte_identical(serving_dirs):
    from repro.runner.cache import ProfileCache
    from repro.runner.traces import TraceStore

    cache_dir, trace_root = serving_dirs
    query = Query(kind="markers", workload=WORKLOAD, ilower=20_000)
    # the warm path (graph cached by the session fixture) must produce
    # the same bytes as a from-scratch computation with no stores at all
    warm = compute_payload(
        query,
        cache=ProfileCache(cache_dir),
        trace_store=TraceStore(trace_root),
    )
    cold = compute_payload(query)
    assert warm == cold


def test_payload_document_shape(serving_dirs):
    from repro.runner.cache import ProfileCache
    from repro.runner.traces import TraceStore

    cache_dir, trace_root = serving_dirs
    cache, store = ProfileCache(cache_dir), TraceStore(trace_root)
    for kind, field in (
        ("profile", "graph"),
        ("markers", "markers"),
        ("bbv", "bbv"),
    ):
        query = Query(kind=kind, workload=WORKLOAD)
        doc = json.loads(
            compute_payload(query, cache=cache, trace_store=store)
        )
        assert doc["payload_version"] == PAYLOAD_VERSION
        assert doc["query"] == query.as_dict()
        assert field in doc
    assert doc["bbv"]["num_intervals"] > 0
    assert len(doc["bbv"]["matrix_digest"]) == 64


def test_stream_window_is_part_of_the_identity():
    a = Query(kind="stream", workload=WORKLOAD)
    assert a.key() != Query(kind="stream", workload=WORKLOAD, window=4).key()


def test_stream_payload_shape_and_purity(serving_dirs):
    from repro.runner.cache import ProfileCache
    from repro.runner.traces import TraceStore

    cache_dir, trace_root = serving_dirs
    cache, store = ProfileCache(cache_dir), TraceStore(trace_root)
    query = query_from_dict(
        {"kind": "stream", "workload": WORKLOAD, "window": 4}
    )
    payload = compute_payload(query, cache=cache, trace_store=store)
    assert payload == compute_payload(query)  # cold path, same bytes
    doc = json.loads(payload)
    assert doc["payload_version"] == PAYLOAD_VERSION
    assert doc["query"] == query.as_dict()
    stream = doc["stream"]
    assert stream["window_slots"] == 4
    assert stream["batch_equivalent"] is False
    assert stream["events"] > 0
    assert stream["total_instructions"] > 0
    assert stream["slots_sealed"] >= stream["slots_evicted"] >= 0
    assert stream["phase_changes"] >= 0
    assert stream["markers"]["markers"]


def test_stream_unbounded_is_flagged_batch_equivalent():
    """window=0 disables drift: no re-selections, batch_equivalent set,
    and the final marker set is exactly the batch selection."""
    markers_doc = json.loads(
        compute_payload(Query(kind="markers", workload=WORKLOAD))
    )
    doc = json.loads(compute_payload(Query(kind="stream", workload=WORKLOAD)))
    stream = doc["stream"]
    assert stream["batch_equivalent"] is True
    assert stream["reselections"] == []
    assert stream["drift_events"] == 0
    assert stream["markers"] == markers_doc["markers"]


def test_run_query_job_matches_inline_compute(serving_dirs):
    cache_dir, trace_root = serving_dirs
    query = Query(kind="markers", workload=WORKLOAD)
    job = QueryJob(
        query=query,
        cache_dir=cache_dir,
        trace_root=trace_root,
        run_id="testrun",
    )
    result = run_query_job(job)
    assert result.key == query.key()
    assert result.payload == compute_payload(query)
    assert result.graph_source in ("cache", "profiled")
    assert result.seconds >= 0
    # the worker ships a telemetry snapshot carrying the parent run id
    assert result.telemetry is not None
    assert result.telemetry["run_id"] == "testrun"
    assert any(
        s["name"] == "serve.compute" for s in result.telemetry["spans"]
    )
