"""The serving CLI: ``repro query`` bytes and the serve+loadgen loop."""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.serving import Query, compute_payload

from .conftest import WORKLOAD

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def test_query_cli_prints_canonical_payload_bytes(serving_dirs, capsysbinary):
    cache_dir, trace_root = serving_dirs
    assert (
        main(
            [
                "query",
                "markers",
                WORKLOAD,
                "--cache-dir",
                cache_dir,
                "--trace-root",
                trace_root,
            ]
        )
        == 0
    )
    out = capsysbinary.readouterr().out
    # stdout is the canonical payload plus exactly one newline
    assert out == compute_payload(Query(kind="markers", workload=WORKLOAD)) + b"\n"


def test_query_cli_writes_payload_file(serving_dirs, tmp_path):
    cache_dir, trace_root = serving_dirs
    out_file = tmp_path / "payload.json"
    assert (
        main(
            [
                "query",
                "bbv",
                WORKLOAD,
                "--cache-dir",
                cache_dir,
                "--trace-root",
                trace_root,
                "-o",
                str(out_file),
            ]
        )
        == 0
    )
    assert out_file.read_bytes() == compute_payload(
        Query(kind="bbv", workload=WORKLOAD)
    )


def test_query_cli_rejects_unknown_workload(capsys):
    with pytest.raises(SystemExit):
        main(["query", "markers"])  # missing workload positional
    from repro.serving import QueryError

    with pytest.raises(QueryError):
        main(["query", "markers", "nope", "--no-cache"])


def test_serve_and_loadgen_cli_round_trip(serving_dirs, tmp_path):
    """The ISSUE acceptance run: `repro loadgen --check --shutdown`
    against a live `repro serve` subprocess exits 0 with no errors and
    no byte mismatches."""
    cache_dir, trace_root = serving_dirs
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--jobs",
            "2",
            "--cache-dir",
            cache_dir,
            "--trace-root",
            trace_root,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no listening line from repro serve: {line!r}"
        host, port = match.group(1), match.group(2)
        summary_file = tmp_path / "summary.json"
        rc = main(
            [
                "loadgen",
                "--host",
                host,
                "--port",
                port,
                "--scenario",
                "server",
                "--target-qps",
                "40",
                "--min-duration",
                "0.5",
                "--min-queries",
                "10",
                "--max-duration",
                "10",
                "--workload",
                WORKLOAD,
                "--cache-dir",
                cache_dir,
                "--trace-root",
                trace_root,
                "--check",
                "--shutdown",
                "-o",
                str(summary_file),
            ]
        )
        assert rc == 0
        summary = json.loads(summary_file.read_text())
        assert summary["errors"] == 0
        assert summary["check_mismatches"] == 0
        assert summary["completed"] >= 10
        assert summary["latency_ms"]["p99"] > 0
        # --shutdown drained the server; it exits 0 on its own
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
