"""The dedup/micro-batch layer, including the interleaving fuzz test.

The batcher's contract is a bijection: every ``submit(query)`` resolves
to exactly the payload of *that* query — never lost, never duplicated,
never cross-wired — while concurrent duplicates share one computation.
The fuzz test drives random interleavings of duplicate and distinct
queries through it and checks the bijection on every response.
"""

import asyncio
import random

import pytest

from repro.serving import BatcherClosed, Query, QueryBatcher
from repro.serving.queries import canonical_json_bytes


def payload_for(query: Query) -> bytes:
    return canonical_json_bytes({"key": query.key(), "kind": query.kind})


class CountingCompute:
    """A fake compute backend: records per-key call counts, optionally
    sleeps (so duplicates overlap), optionally fails on demand."""

    def __init__(self, delay_s: float = 0.0, fail_keys=()):
        self.calls = {}
        self.delay_s = delay_s
        self.fail_keys = set(fail_keys)

    async def __call__(self, query: Query) -> bytes:
        self.calls[query.key()] = self.calls.get(query.key(), 0) + 1
        if self.delay_s:
            await asyncio.sleep(self.delay_s)
        if query.key() in self.fail_keys:
            raise RuntimeError(f"injected failure for {query.label()}")
        return payload_for(query)


def queries(n):
    return [Query(kind="markers", workload=f"w{i}") for i in range(n)]


def test_concurrent_duplicates_share_one_computation():
    async def main():
        compute = CountingCompute(delay_s=0.01)
        batcher = QueryBatcher(compute, batch_window_s=0.005)
        (query,) = queries(1)
        payloads = await asyncio.gather(
            *(batcher.submit(query) for _ in range(5))
        )
        await batcher.close()
        return compute, batcher, payloads

    compute, batcher, payloads = asyncio.run(main())
    assert payloads == [payload_for(queries(1)[0])] * 5
    assert compute.calls == {queries(1)[0].key(): 1}
    stats = batcher.stats()
    assert stats["submitted"] == 5
    assert stats["computed"] == 1
    assert stats["deduplicated"] == 4


def test_distinct_queries_compute_independently():
    async def main():
        compute = CountingCompute()
        batcher = QueryBatcher(compute, batch_window_s=0.001)
        qs = queries(4)
        payloads = await asyncio.gather(*(batcher.submit(q) for q in qs))
        await batcher.close()
        return compute, payloads, qs

    compute, payloads, qs = asyncio.run(main())
    assert payloads == [payload_for(q) for q in qs]
    assert all(count == 1 for count in compute.calls.values())


def test_failure_propagates_to_every_waiter_then_clears():
    async def main():
        (query,) = queries(1)
        compute = CountingCompute(delay_s=0.01, fail_keys=[query.key()])
        batcher = QueryBatcher(compute, batch_window_s=0.005)
        results = await asyncio.gather(
            *(batcher.submit(query) for _ in range(3)),
            return_exceptions=True,
        )
        # the failure is not cached: a retry computes again
        compute.fail_keys.clear()
        retry = await batcher.submit(query)
        await batcher.close()
        return compute, results, retry, query

    compute, results, retry, query = asyncio.run(main())
    assert all(isinstance(r, RuntimeError) for r in results)
    assert retry == payload_for(query)
    assert compute.calls[query.key()] == 2


def test_submit_after_close_raises():
    async def main():
        batcher = QueryBatcher(CountingCompute(), batch_window_s=0.001)
        await batcher.close()
        with pytest.raises(BatcherClosed):
            await batcher.submit(queries(1)[0])

    asyncio.run(main())


def test_close_drains_pending_submissions():
    async def main():
        compute = CountingCompute(delay_s=0.02)
        batcher = QueryBatcher(compute, batch_window_s=0.05)
        qs = queries(3)
        tasks = [asyncio.create_task(batcher.submit(q)) for q in qs]
        await asyncio.sleep(0)  # let the submissions enter the batcher
        await batcher.close(drain=True)
        return await asyncio.gather(*tasks), qs

    payloads, qs = asyncio.run(main())
    assert payloads == [payload_for(q) for q in qs]


def test_max_batch_dispatches_inside_the_window():
    async def main():
        compute = CountingCompute()
        # a window long enough that only max_batch can explain dispatch
        batcher = QueryBatcher(compute, batch_window_s=5.0, max_batch=2)
        qs = queries(4)
        payloads = await asyncio.wait_for(
            asyncio.gather(*(batcher.submit(q) for q in qs)), timeout=2.0
        )
        await batcher.close(drain=False)
        return batcher, payloads, qs

    batcher, payloads, qs = asyncio.run(main())
    assert payloads == [payload_for(q) for q in qs]
    assert batcher.stats()["largest_batch"] <= 2


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fuzz_random_interleavings_preserve_bijection(seed):
    """Random duplicate/distinct interleavings: every response carries
    exactly its own query's payload; accounting adds up."""
    rng = random.Random(seed)
    pool = queries(6)
    num_clients = rng.randint(3, 8)
    plans = [
        [rng.choice(pool) for _ in range(rng.randint(5, 20))]
        for _ in range(num_clients)
    ]
    total = sum(len(plan) for plan in plans)

    async def main():
        compute = CountingCompute(delay_s=0.002)
        batcher = QueryBatcher(
            compute,
            batch_window_s=rng.choice([0.0005, 0.002, 0.01]),
            max_batch=rng.choice([1, 2, 8]),
        )

        async def client(plan):
            got = []
            for query in plan:
                if rng.random() < 0.5:
                    await asyncio.sleep(rng.random() * 0.004)
                got.append((query, await batcher.submit(query)))
            return got

        results = await asyncio.gather(*(client(plan) for plan in plans))
        await batcher.close()
        return compute, batcher, results

    compute, batcher, results = asyncio.run(main())
    answered = 0
    for got in results:
        for query, payload in got:
            assert payload == payload_for(query)  # never cross-wired
            answered += 1
    assert answered == total  # never lost
    stats = batcher.stats()
    assert stats["submitted"] == total
    assert stats["computed"] + stats["deduplicated"] == total
    assert stats["computed"] == sum(compute.calls.values())
    assert stats["failed"] == 0
