"""Shared fixtures for the serving acceptance tests.

The expensive part of every serving test is the first cold profile of a
workload; ``serving_dirs`` pays it once per session by pre-warming a
shared cache/trace directory pair that the in-process servers then
mount, so the suite measures serving behavior, not interpreter speed.
"""

from __future__ import annotations

import pytest

#: the small workload every serving test queries
WORKLOAD = "compress95"


@pytest.fixture(scope="session")
def serving_dirs(tmp_path_factory):
    """(cache_dir, trace_root) strings, pre-warmed for WORKLOAD."""
    from repro.runner.cache import ProfileCache
    from repro.runner.traces import TraceStore
    from repro.serving import Query, compute_payload

    root = tmp_path_factory.mktemp("serving")
    cache_dir = str(root / "cache")
    trace_root = str(root / "traces")
    compute_payload(
        Query(kind="markers", workload=WORKLOAD),
        cache=ProfileCache(cache_dir),
        trace_store=TraceStore(trace_root),
    )
    return cache_dir, trace_root
