"""The load generator: seeded determinism and live-server scenarios."""

import asyncio

import pytest

from repro.serving import (
    LoadGenSettings,
    PhaseMarkerServer,
    Query,
    build_plan,
    expected_payloads,
    percentile,
    run_loadgen_async,
)

from .conftest import WORKLOAD


def settings(**overrides):
    base = dict(
        scenario="server",
        target_qps=50.0,
        max_async_queries=8,
        min_duration_s=0.2,
        max_duration_s=5.0,
        min_queries=10,
        seed=7,
    )
    base.update(overrides)
    return LoadGenSettings(**base)


QUERIES = [
    Query(kind="markers", workload=WORKLOAD),
    Query(kind="profile", workload=WORKLOAD),
]


def test_build_plan_is_deterministic_per_seed():
    """The acceptance property: same seed, same schedule — always."""
    a = build_plan(settings(), QUERIES)
    b = build_plan(settings(), QUERIES)
    assert a.arrivals == b.arrivals
    assert a.queries == b.queries
    c = build_plan(settings(seed=8), QUERIES)
    assert a.arrivals != c.arrivals


def test_build_plan_arrivals_are_increasing_poisson_offsets():
    plan = build_plan(settings(), QUERIES)
    assert list(plan.arrivals) == sorted(plan.arrivals)
    assert all(t > 0 for t in plan.arrivals)
    assert len(plan.arrivals) == len(plan.queries)
    # enough schedule to cover max_duration at the target rate
    assert plan.arrivals[-1] >= settings().max_duration_s or len(
        plan.arrivals
    ) >= settings().min_queries


def test_build_plan_singlestream_has_no_arrivals():
    plan = build_plan(settings(scenario="singlestream"), QUERIES)
    assert plan.arrivals == ()
    assert len(plan.queries) >= settings().min_queries


@pytest.mark.parametrize(
    "bad",
    [
        {"scenario": "offline"},
        {"target_qps": 0.0},
        {"max_async_queries": 0},
        {"min_queries": 0},
        {"min_duration_s": 0.0},
        {"min_duration_s": 9.0, "max_duration_s": 1.0},
    ],
)
def test_settings_validation(bad):
    with pytest.raises(ValueError):
        settings(**bad).validate()


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert percentile(values, 0.50) == 5.0
    assert percentile(values, 0.90) == 9.0
    assert percentile(values, 0.99) == 10.0
    assert percentile([], 0.99) == 0.0


def _run_scenario(serving_dirs, scenario_settings, check=True):
    cache_dir, trace_root = serving_dirs
    expected = (
        expected_payloads(QUERIES, cache_dir=cache_dir, trace_root=trace_root)
        if check
        else None
    )

    async def main():
        server = PhaseMarkerServer(
            port=0, jobs=2, cache_dir=cache_dir, trace_root=trace_root
        )
        await server.start()
        try:
            return await run_loadgen_async(
                server.host,
                server.port,
                QUERIES,
                scenario_settings,
                expected=expected,
            )
        finally:
            await server.shutdown()

    return asyncio.run(main())


def test_server_scenario_live_run_checks_bytes(serving_dirs):
    summary = _run_scenario(serving_dirs, settings())
    assert summary.issued >= settings().min_queries
    assert summary.completed == summary.issued
    assert summary.errors == 0
    assert summary.check_mismatches == 0
    assert summary.achieved_qps > 0
    assert summary.p99_ms >= summary.p50_ms > 0
    doc = summary.as_dict()
    assert doc["latency_ms"]["p99"] == summary.p99_ms
    assert "p99 latency (ms)" in summary.render()


def test_singlestream_scenario_live_run(serving_dirs):
    summary = _run_scenario(
        serving_dirs, settings(scenario="singlestream", min_queries=5)
    )
    assert summary.completed >= 5
    assert summary.errors == 0
    assert summary.check_mismatches == 0
    assert summary.overload_waits == 0


def test_expected_payloads_computes_each_distinct_query_once(serving_dirs):
    cache_dir, trace_root = serving_dirs
    expected = expected_payloads(
        QUERIES + QUERIES, cache_dir=cache_dir, trace_root=trace_root
    )
    assert set(expected) == {q.key() for q in QUERIES}
    from repro.serving import compute_payload

    assert expected[QUERIES[0].key()] == compute_payload(QUERIES[0])
