"""Doc-sync checks: the README's copy-pasteable claims must stay true.

Three things rot silently in READMEs: code examples (APIs drift), make
targets (renamed or removed), and CLI flags (spelled from memory).  This
module executes the README's quickstart block verbatim and cross-checks
every ``make`` target and ``--flag`` the README mentions against the
Makefile and the argparse tree, so a stale README fails CI instead of
misleading a reader.
"""

import contextlib
import io
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
MAKEFILE = REPO_ROOT / "Makefile"

FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)


def fenced_blocks(text):
    """Yield (language, body) for every fenced code block."""
    return [(m.group(1), m.group(2)) for m in FENCE_RE.finditer(text)]


def readme_text():
    return README.read_text()


def test_quickstart_block_runs_and_prints_documented_output():
    """Execute the README's python block verbatim; its stdout must match
    the fenced output block the README shows right after it."""
    blocks = fenced_blocks(readme_text())
    python_blocks = [body for lang, body in blocks if lang == "python"]
    assert len(python_blocks) == 1, "README should have exactly one python block"
    source = python_blocks[0]

    # The plain fenced block immediately following the python block is
    # the documented output.
    langs = [lang for lang, _ in blocks]
    idx = langs.index("python")
    assert idx + 1 < len(blocks) and blocks[idx + 1][0] == "", (
        "README python block must be followed by its expected-output block"
    )
    expected = blocks[idx + 1][1].strip()

    captured = io.StringIO()
    namespace = {"__name__": "readme_quickstart"}
    with contextlib.redirect_stdout(captured):
        exec(compile(source, str(README), "exec"), namespace)
    assert captured.getvalue().strip() == expected


def test_make_targets_mentioned_in_readme_exist():
    targets_in_makefile = set(
        re.findall(r"^([a-zA-Z0-9_-]+):", MAKEFILE.read_text(), re.MULTILINE)
    )
    mentioned = set(re.findall(r"make ([a-z0-9-]+)", readme_text()))
    missing = mentioned - targets_in_makefile
    assert not missing, f"README mentions make targets absent from Makefile: {missing}"


def _parser_option_strings(parser):
    """All option strings reachable from a parser, subparsers included."""
    import argparse

    seen = set()
    stack = [parser]
    while stack:
        p = stack.pop()
        for action in p._actions:
            seen.update(action.option_strings)
            if isinstance(action, argparse._SubParsersAction):
                stack.extend(action.choices.values())
    return seen


@pytest.mark.parametrize(
    "doc",
    [
        "README.md",
        "docs/CLI.md",
        "docs/PARALLELISM.md",
        "docs/OBSERVABILITY.md",
        "docs/PERFORMANCE.md",
        "docs/SERVING.md",
        "docs/STREAMING.md",
        "docs/VERIFICATION.md",
    ],
)
def test_documented_cli_flags_exist(doc):
    from repro.cli import build_parser

    options = _parser_option_strings(build_parser())
    text = (REPO_ROOT / doc).read_text()
    mentioned = set(re.findall(r"(--[a-z][a-z-]+)", text))
    # Strip table/formatting artifacts: only check flags that look like
    # repro CLI options (the docs also show e.g. `--benchmark-only` for
    # pytest and `-O0` compiler flags).
    foreign = {"--benchmark-only", "--help"}
    missing = {m for m in mentioned - foreign if m not in options}
    assert not missing, f"{doc} mentions unknown repro CLI flags: {missing}"
