"""Edge cases of the chunked columnar recorder (TraceBuilder + Machine.record)."""

import numpy as np

from repro.engine import Machine, record_trace
from repro.engine.events import (
    K_BLOCK,
    K_CALL,
    K_RETURN,
    BlockEvent,
)
from repro.engine.tracing import DEFAULT_CHUNK_ROWS, Trace, TraceBuilder
from repro.ir import ProgramBuilder
from repro.ir.program import ProgramInput


def assert_traces_equal(got: Trace, want: Trace):
    assert len(got) == len(want)
    for name in ("kinds", "a", "b", "c"):
        assert np.array_equal(getattr(got, name), getattr(want, name)), name


def test_empty_builder():
    trace = TraceBuilder().build()
    assert len(trace) == 0
    assert trace.total_instructions == 0
    assert list(trace.replay()) == []


def test_single_event():
    b = TraceBuilder()
    b.emit(K_BLOCK, 3, 0x1000, 7)
    trace = b.build()
    assert len(trace) == 1
    assert trace.kinds.tolist() == [K_BLOCK]
    assert (trace.a[0], trace.b[0], trace.c[0]) == (3, 0x1000, 7)


def test_chunk_growth_preserves_order():
    """Rows straddling many chunk boundaries come back in emit order."""
    b = TraceBuilder(chunk_rows=4)
    n = 1000
    for i in range(n):
        b.emit(K_BLOCK, i, i * 16, i % 7 + 1)
    assert b.num_chunks > 1
    trace = b.build()
    assert len(trace) == n
    assert trace.a.tolist() == list(range(n))
    assert trace.b.tolist() == [i * 16 for i in range(n)]


def test_append_rows_splices_between_scalar_rows():
    """A spliced block lands exactly between the scalar rows around it."""
    b = TraceBuilder(chunk_rows=8)
    b.emit(K_CALL, 1, 2, 0)
    block = (
        np.full(5, K_BLOCK, dtype=np.int8),
        np.arange(5, dtype=np.int64),
        np.arange(5, dtype=np.int64) * 10,
        np.ones(5, dtype=np.int64),
    )
    b.append_rows(*block)
    b.emit(K_RETURN, 2, 0, 0)
    trace = b.build()
    assert trace.kinds.tolist() == [K_CALL] + [K_BLOCK] * 5 + [K_RETURN]
    assert trace.a.tolist() == [1, 0, 1, 2, 3, 4, 2]


def test_append_empty_rows_is_noop():
    b = TraceBuilder()
    b.emit(K_CALL, 1, 2, 0)
    b.append_rows(
        np.empty(0, dtype=np.int8),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
    )
    assert len(b.build()) == 1


def test_splice_then_scalar_reuses_chunk_capacity():
    """Scalar rows after a splice keep writing the same chunk (no realloc)."""
    b = TraceBuilder(chunk_rows=64)
    for i in range(3):
        b.emit(K_BLOCK, i, i, 1)
    b.append_rows(
        np.full(2, K_BLOCK, dtype=np.int8),
        np.array([100, 101], dtype=np.int64),
        np.zeros(2, dtype=np.int64),
        np.ones(2, dtype=np.int64),
    )
    for i in range(3, 6):
        b.emit(K_BLOCK, i, i, 1)
    trace = b.build()
    assert trace.a.tolist() == [0, 1, 2, 100, 101, 3, 4, 5]


def test_fast_record_matches_object_path(toy_program, toy_input):
    fast = record_trace(Machine(toy_program, toy_input))
    oracle = record_trace(Machine(toy_program, toy_input).run())
    assert_traces_equal(fast, oracle)


def test_fast_record_matches_object_path_recursive(recursive_program, toy_input):
    fast = record_trace(Machine(recursive_program, toy_input))
    oracle = record_trace(Machine(recursive_program, toy_input).run())
    assert_traces_equal(fast, oracle)


def test_fast_record_with_instruction_cap(loop_only_program, toy_input):
    """Cap truncation is identical between the two recording paths,
    including the instruction counter (the crossing block is counted
    but not emitted on both)."""
    m_fast = Machine(loop_only_program, toy_input, max_instructions=5000)
    fast = record_trace(m_fast)
    m_orc = Machine(loop_only_program, toy_input, max_instructions=5000)
    oracle = record_trace(m_orc.run())
    assert_traces_equal(fast, oracle)
    assert m_fast.instructions_executed == m_orc.instructions_executed


def test_tiled_loop_straddles_chunk_boundary():
    """A pure-block loop big enough for the np.tile path, recorded into
    tiny chunks, still matches the object path row for row."""
    b = ProgramBuilder("tile")
    with b.proc("main"):
        with b.loop("L", trips=300):
            b.code(3)
            b.code(5)
    program = b.build()
    inp = ProgramInput("t", {}, seed=1)
    builder = TraceBuilder(chunk_rows=4)
    fast = Machine(program, inp).record(builder)
    oracle = record_trace(Machine(program, inp).run())
    assert_traces_equal(fast, oracle)


def test_default_chunk_reused_across_build():
    """build() on exactly one chunk returns its view without concatenation."""
    b = TraceBuilder()
    for i in range(10):
        b.emit(K_BLOCK, i, i, 1)
    assert b.num_chunks == 1
    trace = b.build()
    assert len(trace) == 10
    assert 10 < DEFAULT_CHUNK_ROWS  # stayed inside the first chunk
