"""Unit tests for trace save/load."""

import numpy as np

from repro.engine import Machine, record_trace
from repro.engine.tracing import Trace


def test_roundtrip(toy_program, toy_input, tmp_path):
    trace = record_trace(Machine(toy_program, toy_input).run())
    path = tmp_path / "run.npz"
    trace.save(path)
    back = Trace.load(path)
    assert np.array_equal(back.kinds, trace.kinds)
    assert np.array_equal(back.a, trace.a)
    assert np.array_equal(back.b, trace.b)
    assert np.array_equal(back.c, trace.c)
    assert back.total_instructions == trace.total_instructions


def test_loaded_trace_drives_pipeline(toy_program, toy_input, tmp_path):
    """The profile-once / analyze-offline workflow."""
    from repro.callloop import CallLoopProfiler

    trace = record_trace(Machine(toy_program, toy_input).run())
    path = tmp_path / "run.npz"
    trace.save(path)

    profiler = CallLoopProfiler(toy_program)
    graph = profiler.profile_trace(Trace.load(path))
    assert graph.total_instructions == trace.total_instructions


def test_empty_trace_roundtrip(tmp_path):
    trace = record_trace([])
    path = tmp_path / "empty.npz"
    trace.save(path)
    assert len(Trace.load(path)) == 0
