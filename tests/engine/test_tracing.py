"""Unit tests for trace recording and replay."""

import numpy as np
import pytest

from repro.engine import Machine, record_trace
from repro.engine.events import (
    K_BLOCK,
    BlockEvent,
    BranchEvent,
    CallEvent,
    ReturnEvent,
)
from repro.engine.tracing import Trace


def test_roundtrip_events():
    events = [
        BlockEvent(1, 0x1000, 10),
        BranchEvent(0x1024, 0x1000, True),
        CallEvent(0x1100, 2),
        BlockEvent(5, 0x2000, 3),
        ReturnEvent(2),
    ]
    trace = record_trace(events)
    assert list(trace.replay()) == events


def test_total_instructions():
    trace = record_trace([BlockEvent(0, 0, 10), BlockEvent(1, 4, 7)])
    assert trace.total_instructions == 17
    assert trace.num_block_events == 2


def test_block_ids_and_sizes():
    trace = record_trace(
        [BlockEvent(3, 0, 10), ReturnEvent(0), BlockEvent(9, 4, 7)]
    )
    assert trace.block_ids().tolist() == [3, 9]
    assert trace.block_sizes().tolist() == [10, 7]


def test_iter_packed_matches_replay(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    packed = list(trace.iter_packed())
    assert len(packed) == len(trace)
    blocks = [p for p in packed if p[0] == K_BLOCK]
    assert len(blocks) == trace.num_block_events


def test_column_mismatch_rejected():
    with pytest.raises(ValueError):
        Trace(
            np.zeros(2, dtype=np.int8),
            np.zeros(3, dtype=np.int64),
            np.zeros(2, dtype=np.int64),
            np.zeros(2, dtype=np.int64),
        )


def test_unknown_event_rejected():
    with pytest.raises(TypeError):
        record_trace([object()])


def test_empty_trace():
    trace = record_trace([])
    assert len(trace) == 0
    assert trace.total_instructions == 0
    assert list(trace.replay()) == []


def test_replay_equals_machine_run(toy_program, toy_input):
    original = list(Machine(toy_program, toy_input).run())
    trace = record_trace(original)
    assert list(trace.replay()) == original
