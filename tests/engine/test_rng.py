"""Unit tests for deterministic RNG derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.engine.rng import derive_seed, make_rng


def test_stable():
    assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")


def test_labels_matter():
    assert derive_seed(1, "a") != derive_seed(1, "b")


def test_seed_matters():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_make_rng_streams_independent():
    a = make_rng(7, "x")
    b = make_rng(7, "y")
    assert a.random() != b.random()


def test_make_rng_reproducible():
    assert make_rng(7, "x").random() == make_rng(7, "x").random()


@given(st.integers(0, 2**32), st.text(max_size=20))
def test_in_range(seed, label):
    s = derive_seed(seed, label)
    assert 0 <= s < 2**63
