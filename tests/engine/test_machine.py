"""Unit tests for the execution engine."""

import numpy as np
import pytest

from repro.engine import Machine, record_trace
from repro.engine.events import BlockEvent, BranchEvent, CallEvent, ReturnEvent
from repro.engine.machine import ExecutionLimitExceeded, run_program
from repro.ir import ProgramBuilder
from repro.ir.program import ProgramInput


def events_of(program, inp, **kw):
    return list(Machine(program, inp, **kw).run())


def test_straight_line_block_events():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(10)
        b.code(20)
    prog = b.build()
    evs = events_of(prog, ProgramInput("i"))
    assert [e.size for e in evs if isinstance(e, BlockEvent)] == [10, 20]


def test_loop_emits_backwards_branches():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l", trips=3):
            b.code(5)
    prog = b.build()
    evs = events_of(prog, ProgramInput("i"))
    branches = [e for e in evs if isinstance(e, BranchEvent)]
    assert len(branches) == 3
    # back-edges: target is at-or-before the branch address
    assert all(e.target < e.address for e in branches)
    # taken for all but the last iteration
    assert [e.taken for e in branches] == [True, True, False]


def test_loop_header_per_iteration():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l", trips=4):
            b.code(5)
    prog = b.build()
    loop = prog.procedures["main"].body[0]
    evs = events_of(prog, ProgramInput("i"))
    headers = [
        e
        for e in evs
        if isinstance(e, BlockEvent) and e.address == loop.header_block.address
    ]
    assert len(headers) == 4


def test_zero_trip_loop_skipped():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(3)
        with b.loop("l", trips=0):
            b.code(5)
    prog = b.build()
    evs = events_of(prog, ProgramInput("i"))
    assert len([e for e in evs if isinstance(e, BlockEvent)]) == 1


def test_call_return_bracketing():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.call("f")
    with b.proc("f"):
        b.code(7)
    prog = b.build()
    evs = events_of(prog, ProgramInput("i"))
    kinds = [type(e).__name__ for e in evs]
    assert kinds == ["BlockEvent", "CallEvent", "BlockEvent", "ReturnEvent"]
    call = next(e for e in evs if isinstance(e, CallEvent))
    ret = next(e for e in evs if isinstance(e, ReturnEvent))
    assert call.callee_id == ret.proc_id == prog.procedures["f"].proc_id


def test_if_respects_probability():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l", trips=2000):
            with b.if_(0.25):
                b.code(3, label="then")
            with b.else_():
                b.code(4, label="else")
    prog = b.build()
    then_id = next(blk.block_id for blk in prog.blocks if blk.label == "then")
    evs = events_of(prog, ProgramInput("i", seed=3))
    count = sum(
        1 for e in evs if isinstance(e, BlockEvent) and e.block_id == then_id
    )
    assert 0.20 < count / 2000 < 0.30


def test_switch_respects_weights():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l", trips=2000):
            with b.switch([0.8, 0.2]) as sw:
                with sw.case():
                    b.code(3, label="hot")
                with sw.case():
                    b.code(3, label="cold")
    prog = b.build()
    hot_id = next(blk.block_id for blk in prog.blocks if blk.label == "hot")
    evs = events_of(prog, ProgramInput("i", seed=5))
    count = sum(1 for e in evs if isinstance(e, BlockEvent) and e.block_id == hot_id)
    assert 0.74 < count / 2000 < 0.86


def test_determinism(toy_program, toy_input):
    a = record_trace(Machine(toy_program, toy_input).run())
    b = record_trace(Machine(toy_program, toy_input).run())
    assert np.array_equal(a.kinds, b.kinds)
    assert np.array_equal(a.a, b.a)
    assert np.array_equal(a.b, b.b)
    assert np.array_equal(a.c, b.c)


def test_different_seeds_differ(toy_program):
    a = record_trace(Machine(toy_program, ProgramInput("i", seed=1)).run())
    b = record_trace(Machine(toy_program, ProgramInput("i", seed=2)).run())
    assert a.total_instructions != b.total_instructions


def test_recursion_runs(recursive_program):
    evs = events_of(recursive_program, ProgramInput("i", seed=11))
    calls = sum(1 for e in evs if isinstance(e, CallEvent))
    rets = sum(1 for e in evs if isinstance(e, ReturnEvent))
    assert calls == rets
    assert calls >= 10  # at least the ten top-level calls


def test_max_instructions_soft_cap(toy_program, toy_input):
    evs = events_of(toy_program, toy_input, max_instructions=500)
    total = sum(e.size for e in evs if isinstance(e, BlockEvent))
    assert total <= 500 + max(blk.size for blk in toy_program.blocks)


def test_max_instructions_strict_raises(toy_program, toy_input):
    machine = Machine(toy_program, toy_input, max_instructions=100, strict=True)
    with pytest.raises(ExecutionLimitExceeded):
        list(machine.run())


def test_run_program_wrapper(toy_program, toy_input):
    evs = list(run_program(toy_program, toy_input))
    assert evs == events_of(toy_program, toy_input)


def test_instruction_counter_matches_trace(toy_program, toy_input):
    machine = Machine(toy_program, toy_input)
    trace = record_trace(machine.run())
    assert machine.instructions_executed == trace.total_instructions
