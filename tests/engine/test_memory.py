"""Unit tests for the memory address-stream generator."""

import numpy as np
import pytest

from repro.engine import Machine, MemorySystem, record_trace
from repro.ir import ProgramBuilder
from repro.ir.program import MemPattern, MemSpec, ParamExpr, ProgramInput


def build_mem_program(mem_spec):
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l", trips=100):
            b.code(10, loads=4, mem=mem_spec, label="body")
    return b.build()


def run_addresses(prog, inp):
    trace = record_trace(Machine(prog, inp).run())
    ms = MemorySystem(prog, inp)
    return ms.addresses_for_blocks(trace.block_ids())


def test_counts_match_mem_ops():
    prog = build_mem_program(ProgramBuilder.wset("heap", 1 << 14))
    addrs = run_addresses(prog, ProgramInput("i"))
    assert len(addrs) == 100 * 4  # 4 loads per body execution


def test_seq_pattern_is_strided():
    prog = build_mem_program(ProgramBuilder.seq("arr", footprint=1 << 20, stride=8))
    addrs = run_addresses(prog, ProgramInput("i"))
    deltas = np.diff(addrs)
    assert (deltas == 8).mean() > 0.99  # wraps at most once here


def test_wset_stays_within_footprint():
    fp = 1 << 12
    prog = build_mem_program(ProgramBuilder.wset("heap", fp))
    addrs = run_addresses(prog, ProgramInput("i"))
    assert addrs.max() - addrs.min() < fp


def test_chase_touches_distinct_lines():
    fp = 1 << 16
    prog = build_mem_program(ProgramBuilder.chase("list", fp))
    addrs = run_addresses(prog, ProgramInput("i"))
    lines = np.unique(addrs // 64)
    assert len(lines) > 100  # walks many distinct cache lines


def test_regions_disjoint():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(5, loads=2, mem=b.wset("a", 1 << 12), label="x")
        b.code(5, loads=2, mem=b.wset("b", 1 << 12), label="y")
    prog = b.build()
    inp = ProgramInput("i")
    ms = MemorySystem(prog, inp)
    ax = ms.addresses_for_block(prog.blocks[0].block_id)
    by = ms.addresses_for_block(prog.blocks[1].block_id)
    assert abs(int(ax[0]) - int(by[0])) > (1 << 20)


def test_param_footprint():
    spec = MemSpec(MemPattern.WSET, "heap", ParamExpr("bytes"))
    prog = build_mem_program(spec)
    small = run_addresses(prog, ProgramInput("i", {"bytes": 1 << 10}))
    large = run_addresses(prog, ProgramInput("i", {"bytes": 1 << 20}))
    assert (small.max() - small.min()) < (large.max() - large.min())


def test_deterministic():
    prog = build_mem_program(ProgramBuilder.wset("heap", 1 << 14))
    inp = ProgramInput("i", seed=9)
    a = run_addresses(prog, inp)
    b = run_addresses(prog, inp)
    assert np.array_equal(a, b)


def test_reset_rewinds_pools():
    prog = build_mem_program(ProgramBuilder.seq("arr", footprint=1 << 20))
    inp = ProgramInput("i")
    ms = MemorySystem(prog, inp)
    bid = next(b.block_id for b in prog.blocks if b.label == "body")
    first = ms.addresses_for_block(bid).copy()
    ms.addresses_for_block(bid)
    ms.reset()
    again = ms.addresses_for_block(bid)
    assert np.array_equal(first, again)


def test_blocks_without_mem_yield_nothing():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(5)
    prog = b.build()
    ms = MemorySystem(prog, ProgramInput("i"))
    assert len(ms.addresses_for_block(0)) == 0


def test_pool_wraparound_take():
    from repro.engine.memory import _Pool

    pool = _Pool(np.arange(5, dtype=np.int64))
    got = pool.take(12)
    assert got.tolist() == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]
    assert pool.take(2).tolist() == [2, 3]


def test_empty_pool_rejected():
    from repro.engine.memory import _Pool

    with pytest.raises(ValueError):
        _Pool(np.empty(0, dtype=np.int64))
