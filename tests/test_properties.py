"""System-wide property tests over randomly generated programs.

A hypothesis strategy builds arbitrary structured programs (random
procedure counts, nesting of loops/ifs/calls, trip distributions) and the
whole pipeline must uphold its invariants on every one of them:

* the engine is deterministic and its traces well-formed;
* static loop discovery finds properly nested regions;
* the walker closes every span it opens and conserves instructions;
* marker-driven VLIs exactly partition execution;
* BBV weighted sums equal interval lengths;
* cross-binary marker traces are identical for every linked variant.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.callloop import (
    SelectionParams,
    build_call_loop_graph,
    map_markers,
    marker_trace,
    select_markers,
)
from repro.callloop.crossbinary import traces_identical
from repro.callloop.graph import NodeTable
from repro.callloop.loops import check_proper_nesting, discover_loops
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.engine import Machine, record_trace
from repro.intervals import collect_bbvs, split_at_markers, split_fixed
from repro.ir import ProgramBuilder, validate_program
from repro.ir.linker import ALPHA_O0, X86_LINUX, link
from repro.ir.program import ProgramInput


# ---------------------------------------------------------------------------
# random program generation
# ---------------------------------------------------------------------------


@st.composite
def program_strategy(draw, max_helpers=7, max_nesting=4, allow_recursion=True):
    """A random structured program with up to ``max_helpers + 1`` procedures.

    Knobs:

    * ``max_helpers`` — call *chains* up to that many procedures deep
      (helper *i* may call any helper *j < i*), so call-loop depth values
      spread far enough for the depth-ordering tie-break (decreasing
      depth, then increasing out-degree) to actually matter;
    * ``max_nesting`` — loop/if nesting bound, letting loop head/body
      towers stack on top of the call chains;
    * ``allow_recursion`` — gated self-recursion: a top-level
      ``if_(p <= 0.4): call(self)`` per procedure.  The gate sits outside
      any loop, so each activation spawns at most one geometric child and
      runs terminate almost surely without an instruction cap.
    """
    n_helpers = draw(st.integers(0, max_helpers))
    helper_names = [f"helper{i}" for i in range(n_helpers)]
    b = ProgramBuilder("random")

    def emit_body(depth: int, callables: list) -> None:
        n_stmts = draw(st.integers(1, 3))
        for _ in range(n_stmts):
            kind = draw(
                st.sampled_from(
                    ["code", "loop", "if", "call"]
                    if depth < max_nesting and callables
                    else (
                        ["code", "loop", "if"]
                        if depth < max_nesting
                        else ["code"]
                    )
                )
            )
            if kind == "code":
                size = draw(st.integers(1, 20))
                b.code(size, loads=draw(st.integers(0, min(3, size))))
            elif kind == "loop":
                trips = draw(st.integers(0, 8))
                with b.loop(f"L{draw(st.integers(0, 10**6))}", trips=trips):
                    emit_body(depth + 1, callables)
            elif kind == "if":
                with b.if_(draw(st.floats(0.0, 1.0))):
                    emit_body(depth + 1, callables)
            else:
                b.call(draw(st.sampled_from(callables)))

    # helper i may call helpers 0..i-1: deep DAG call chains, no cycles
    for i, name in enumerate(helper_names):
        with b.proc(name):
            if allow_recursion and draw(st.booleans()):
                with b.if_(draw(st.floats(0.05, 0.4))):
                    b.call(name)
            emit_body(1, helper_names[:i])
    with b.proc("main"):
        emit_body(0, helper_names)
    return b.build()


COMMON_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_once(program, seed=5):
    inp = ProgramInput("prop", {}, seed=seed)
    trace = record_trace(Machine(program, inp).run())
    return inp, trace


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


@COMMON_SETTINGS
@given(program_strategy())
def test_generated_programs_validate(program):
    validate_program(program, allow_unreachable=True)
    check_proper_nesting(discover_loops(program))


@COMMON_SETTINGS
@given(program_strategy(), st.integers(0, 100))
def test_execution_deterministic(program, seed):
    inp = ProgramInput("prop", {}, seed=seed)
    a = record_trace(Machine(program, inp).run())
    b = record_trace(Machine(program, inp).run())
    assert np.array_equal(a.kinds, b.kinds)
    assert np.array_equal(a.a, b.a)
    assert np.array_equal(a.c, b.c)


class _SpanChecker(ContextHandler):
    def __init__(self):
        self.open = {}
        self.total_closed = 0

    def on_edge_open(self, src, dst, t, source):
        self.open.setdefault((src, dst), []).append(t)

    def on_edge_close(self, src, dst, t_open, t_close, source):
        stack = self.open.get((src, dst))
        assert stack and stack.pop() == t_open
        assert t_close >= t_open
        self.total_closed += 1


@COMMON_SETTINGS
@given(program_strategy())
def test_walker_closes_all_spans(program):
    inp, trace = run_once(program)
    checker = _SpanChecker()
    total = ContextWalker(program, NodeTable(program)).walk(trace, checker)
    assert total == trace.total_instructions
    assert all(not spans for spans in checker.open.values())


@COMMON_SETTINGS
@given(program_strategy())
def test_profiler_conserves_instructions(program):
    inp, trace = run_once(program)
    graph = build_call_loop_graph(program, [inp])
    assert graph.total_instructions == trace.total_instructions
    root_edges = [e for e in graph.edges if e.src.kind.name == "ROOT"]
    assert sum(e.total for e in root_edges) == trace.total_instructions
    for edge in graph.edges:
        assert edge.max >= edge.avg - 1e-9
        assert edge.cov >= 0


@COMMON_SETTINGS
@given(program_strategy(), st.integers(10, 500))
def test_partitions_are_exact(program, ilower):
    inp, trace = run_once(program)
    graph = build_call_loop_graph(program, [inp])
    markers = select_markers(graph, SelectionParams(ilower=ilower)).markers
    vli = split_at_markers(program, trace, markers)
    vli.check_partition(trace.total_instructions)
    assert (vli.lengths >= 0).all()
    fixed = split_fixed(trace, max(1, ilower), program.name)
    fixed.check_partition(trace.total_instructions)


@COMMON_SETTINGS
@given(program_strategy())
def test_bbv_weighted_sums(program):
    inp, trace = run_once(program)
    intervals = split_fixed(trace, 50, program.name)
    bbvs = collect_bbvs(intervals, trace, program.num_blocks)
    assert np.allclose(bbvs.sum(axis=1), intervals.lengths)


@COMMON_SETTINGS
@given(program_strategy())
def test_depth_ordering_matches_oracle(program):
    """The iterative modified DFS and the sort-based processing order
    (decreasing depth, increasing out-degree, name) agree with their
    naive transliterations — including on deep call chains with towers
    of nested loops, where tie-breaks decide the order."""
    from repro.callloop.depth import estimate_max_depth, processing_order
    from repro.verify.oracles import (
        graph_has_cycle,
        oracle_estimate_depth,
        oracle_longest_path_depths,
        oracle_processing_order,
    )

    inp, trace = run_once(program)
    graph = build_call_loop_graph(program, [inp])
    depths = estimate_max_depth(graph)
    assert depths == oracle_estimate_depth(graph)
    assert processing_order(graph) == oracle_processing_order(graph, depths)
    if not graph_has_cycle(graph):
        exact = oracle_longest_path_depths(graph, step_budget=200_000)
        if exact is not None:
            assert depths == exact


@COMMON_SETTINGS
@given(program_strategy())
def test_full_differential_pipeline(program):
    """End to end: optimized profiling, selection, and interval splitting
    match the naive oracles on every generated program."""
    from repro.verify.diff import verify_program

    inp = ProgramInput("prop", {}, seed=5)
    report = verify_program(program, inp, check_reuse=False)
    assert report.ok, report.describe()


@COMMON_SETTINGS
@given(program_strategy(), st.sampled_from([ALPHA_O0, X86_LINUX]))
def test_cross_binary_traces_identical(program, variant):
    inp, trace = run_once(program)
    graph = build_call_loop_graph(program, [inp])
    markers = select_markers(graph, SelectionParams(ilower=20)).markers
    target = link(program, variant)
    report = map_markers(markers, target)
    assert report.fully_mapped
    a = marker_trace(program, inp, markers, trace=trace)
    b = marker_trace(target, inp, report.markers)
    assert traces_identical(a, b)
