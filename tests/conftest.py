"""Shared fixtures: small programs exercising every IR/graph shape."""

from __future__ import annotations

import pytest

from repro.ir import NormalTrips, ProgramBuilder
from repro.ir.program import ProgramInput


def build_toy_program():
    """A program with nested loops, calls from loops, and an if/else."""
    b = ProgramBuilder("toy")
    with b.proc("main"):
        b.code(10, loads=2)
        with b.loop("outer", trips=20):
            b.call("work")
            b.call("emit")
        b.code(5)
    with b.proc("work"):
        with b.loop("inner", trips=NormalTrips(200, 0.05)):
            b.code(8, loads=3, mem=b.wset("heap", 1 << 14))
        with b.if_(0.3):
            b.code(4)
        with b.else_():
            b.code(6)
    with b.proc("emit"):
        with b.loop("out", trips=NormalTrips(50, 0.5)):
            b.code(6, stores=2)
    return b.build()


def build_recursive_program():
    """Direct recursion guarded by a probability that shrinks per level."""
    b = ProgramBuilder("rec")
    with b.proc("main"):
        with b.loop("calls", trips=10):
            b.call("fib")
    with b.proc("fib"):
        b.code(4)
        with b.if_(0.55):
            b.call("fib")
    return b.build()


def build_loop_only_program():
    """Everything in main: the paper's 'programmer writes all code in
    main' extreme, where procedure-only analysis is useless."""
    b = ProgramBuilder("mono")
    with b.proc("main"):
        with b.loop("t", trips=30):
            with b.loop("i", trips=100):
                b.code(12, loads=4, mem=b.seq("grid", 1 << 18))
            with b.loop("j", trips=40):
                b.code(9, stores=3, mem=b.wset("table", 1 << 14))
    return b.build()


@pytest.fixture
def toy_program():
    return build_toy_program()


@pytest.fixture
def recursive_program():
    return build_recursive_program()


@pytest.fixture
def loop_only_program():
    return build_loop_only_program()


@pytest.fixture
def toy_input():
    return ProgramInput("test", {}, seed=7)
