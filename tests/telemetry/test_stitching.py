"""Cross-worker trace stitching: the ``--jobs N --profile-shards M``
acceptance test.

A parallel prefetch under an enabled session must export **one** Chrome
trace containing the spans of every pool worker and every shard lane,
with valid parent linkage throughout — not disconnected per-worker
fragments.
"""

import pytest

from repro.experiments.runner import Runner
from repro.telemetry import (
    analyze_critical_path,
    read_jsonl,
    telemetry_session,
    write_jsonl,
)

SPECS = [
    ("mcf/ref", "ref"),
    ("lucas/ref", "ref"),
    ("mgrid/ref", "ref"),
    ("bzip2/graphic", "ref"),
]


@pytest.fixture(scope="module")
def stitched_trace(tmp_path_factory):
    """One jobs=4 / profile-shards=4 prefetch, exported as JSONL."""
    with telemetry_session() as tm:
        runner = Runner(jobs=4, profile_shards=4)
        profiled = runner.prefetch_graphs(SPECS)
        assert profiled == len(SPECS)
        path = write_jsonl(
            tm, tmp_path_factory.mktemp("trace") / "stitched.jsonl"
        )
    return tm, read_jsonl(path)


def _lanes(events):
    return {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }


def test_single_trace_contains_every_worker(stitched_trace):
    tm, events = stitched_trace
    header = next(e for e in events if e["name"] == "telemetry")
    assert header["args"]["run_id"] == tm.run_id
    lanes = _lanes(events)

    jobs = [e for e in events if e["name"] == "runner.profile_job"]
    assert len(jobs) == len(SPECS)
    worker_labels = {lanes[e["tid"]] for e in jobs}
    # every profiled job rode a worker lane, never the main lane
    assert all(label.startswith("worker ") for label in worker_labels)
    assert all(e["tid"] != 0 for e in jobs)
    # the spans of every participating worker are in this one file
    assert {e["args"].get("worker_pid") for e in jobs} == {
        int(label.split()[1]) for label in worker_labels
    }


def test_single_trace_contains_every_shard(stitched_trace):
    tm, events = stitched_trace
    lanes = _lanes(events)
    jobs = [e for e in events if e["name"] == "runner.profile_job"]
    walks = [e for e in events if e["name"] == "callloop.walk_segment"]
    assert len(walks) == len(SPECS) * 4  # 4 shards per job
    for job in jobs:
        base = lanes[job["tid"]]
        shard_labels = {
            lanes[w["tid"]]
            for w in walks
            if lanes[w["tid"]].startswith(f"{base} ·")
        }
        assert shard_labels == {f"{base} · shard {i}" for i in range(4)}


def test_stitched_spans_have_valid_parent_linkage(stitched_trace):
    tm, events = stitched_trace
    spans = [e for e in events if e["ph"] == "X"]
    ids = {e["args"]["id"] for e in spans}
    assert len(ids) == len(spans)  # remapped ids stay unique
    for e in spans:
        parent = e["args"]["parent"]
        assert parent is None or parent in ids
    # worker roots re-parented under the parent's prefetch span
    prefetch = next(e for e in spans if e["name"] == "runner.prefetch")
    jobs = [e for e in spans if e["name"] == "runner.profile_job"]
    assert all(e["args"]["parent"] == prefetch["args"]["id"] for e in jobs)
    assert all(
        e["args"]["path"] == "runner.prefetch/runner.profile_job"
        for e in jobs
    )


def test_stitched_trace_times_are_coherent(stitched_trace):
    """Worker spans rebase onto the parent epoch: every job span lies
    inside the prefetch span's window (fork epoch rebasing worked)."""
    tm, events = stitched_trace
    spans = [e for e in events if e["ph"] == "X"]
    prefetch = next(e for e in spans if e["name"] == "runner.prefetch")
    lo, hi = prefetch["ts"], prefetch["ts"] + prefetch["dur"]
    slack = 0.05 * prefetch["dur"]
    for e in spans:
        if e["name"] in ("runner.profile_job", "callloop.walk_segment"):
            assert lo - slack <= e["ts"]
            assert e["ts"] + e["dur"] <= hi + slack


def test_stitched_trace_analyzes_with_worker_lanes(stitched_trace):
    tm, events = stitched_trace
    report = analyze_critical_path(events)
    assert report is not None
    assert report.worker_lanes >= 4  # >= one worker + its shard lanes
    assert report.parallel_efficiency is not None
    assert 0.0 < report.parallel_efficiency <= 1.0
    assert not tm.metrics.counters.get("telemetry.merge.run_id_mismatch")
