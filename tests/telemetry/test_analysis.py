"""Unit tests for critical-path/attribution analysis and series report."""

import pytest

from repro.telemetry import (
    Telemetry,
    analyze_critical_path,
    chrome_events,
    critical_path_report,
    series_report,
)
from repro.telemetry.analysis import lane_busy_us, span_events


def _span(name, ts, dur, span_id, parent=None, tid=0, path=None):
    return {
        "name": name,
        "cat": "span",
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": 1,
        "tid": tid,
        "args": {"id": span_id, "parent": parent, "path": path or name},
    }


def _thread_name(tid, name):
    return {
        "name": "thread_name",
        "cat": "meta",
        "ph": "M",
        "ts": 0,
        "pid": 1,
        "tid": tid,
        "args": {"name": name},
    }


def test_span_events_resolves_children_and_orphans():
    events = [
        _span("root", 0, 100, 1),
        _span("child", 10, 50, 2, parent=1),
        _span("orphan", 20, 10, 3, parent=999),  # missing parent -> root
    ]
    spans = span_events(events)
    root = next(s for s in spans if s.name == "root")
    assert [c.name for c in root.children] == ["child"]
    orphan = next(s for s in spans if s.name == "orphan")
    assert orphan.parent_id == 999 and not orphan.children


def test_lane_busy_us_unions_overlapping_intervals():
    events = [
        _span("a", 0, 100, 1, tid=1),
        _span("b", 50, 100, 2, tid=1),  # overlaps a by 50
        _span("c", 300, 10, 3, tid=1),  # gap stays a gap
        _span("d", 0, 40, 4, tid=2),
    ]
    busy = lane_busy_us(span_events(events))
    assert busy[1] == pytest.approx(160.0)  # 150 union + 10
    assert busy[2] == pytest.approx(40.0)


def test_analyze_critical_path_follows_longest_children():
    events = [
        _span("root", 0, 100, 1),
        _span("short", 0, 20, 2, parent=1),
        _span("long", 20, 70, 3, parent=1),
        _span("leaf", 30, 40, 4, parent=3),
    ]
    report = analyze_critical_path(events)
    assert [s.name for s in report.steps] == ["root", "long", "leaf"]
    assert report.wall_us == pytest.approx(100.0)
    # self time: root = 100 - (20 + 70) = 10; long = 70 - 40 = 30
    assert report.steps[0].self_us == pytest.approx(10.0)
    assert report.steps[1].self_us == pytest.approx(30.0)
    count, total, self_total = report.attribution["root"]
    assert (count, total, self_total) == (1, 100.0, pytest.approx(10.0))


def test_parallel_efficiency_over_worker_lanes():
    events = [
        _thread_name(0, "main"),
        _thread_name(1, "worker 10"),
        _thread_name(2, "worker 11"),
        _span("run", 0, 100, 1, tid=0),
        _span("job a", 0, 80, 2, tid=1),
        _span("job b", 0, 40, 3, tid=2),
    ]
    report = analyze_critical_path(events)
    assert report.worker_lanes == 2
    # (80 + 40) / (100 * 2)
    assert report.parallel_efficiency == pytest.approx(0.6)
    assert report.lanes == {0: "main", 1: "worker 10", 2: "worker 11"}


def test_no_worker_lanes_yields_no_efficiency():
    report = analyze_critical_path([_span("solo", 0, 10, 1)])
    assert report.parallel_efficiency is None
    assert report.worker_lanes == 0


def test_analyze_empty_trace_returns_none():
    assert analyze_critical_path([]) is None
    assert critical_path_report([]) == (
        "Telemetry: trace contains no spans to analyze"
    )


def test_critical_path_report_renders_live_session_events():
    tm = Telemetry()
    with tm.span("outer"):
        with tm.span("inner"):
            pass
        tm.emit_span(
            "walk", tm.epoch_ns, tm.epoch_ns + 5_000_000,
            tid=tm.lane("shard 0"),
        )
    report = critical_path_report(list(chrome_events(tm)), source="live")
    assert "Critical path (live)" in report
    assert "outer" in report
    assert "shard 0" in report
    assert "parallel efficiency" in report


# -- series report ------------------------------------------------------------


def test_series_report_first_last_min_max_and_rate():
    samples = [
        {"t_s": 0.0, "counters": {"events": 0}, "gauges": {"depth": 5}},
        {"t_s": 1.0, "counters": {"events": 50}, "gauges": {"depth": 3}},
        {"t_s": 2.0, "counters": {"events": 100}, "gauges": {"depth": 9}},
    ]
    report = series_report(samples, source="s.jsonl")
    assert "metrics time series (s.jsonl)" in report
    assert "3 samples over 2.00 s" in report
    lines = {l.split()[0]: l for l in report.splitlines() if " counter " in l or " gauge " in l}
    assert "50" in lines["events"]  # rate/s = (100 - 0) / 2
    assert lines["depth"].split()[-1] != "50"  # gauges report no rate


def test_series_report_empty():
    assert series_report([]) == "Telemetry: series contains no samples"
