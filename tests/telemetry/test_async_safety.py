"""Regression tests: the flat telemetry surface under concurrency.

``repro serve`` calls ``emit_span``/``lane``/``merge_snapshot`` from
many asyncio tasks and ``MetricsSampler.sample_now`` from a thread
while the event loop reads ``/stats``.  These tests drive the same
shapes with real threads (the strictest interleaving pytest can buy)
and pin the invariants the lock protects: no lost records, unique span
ids, bijective lane allocation, and exact ring-buffer accounting.
"""

import asyncio
import threading
import time

from repro.telemetry import MetricsSampler, Telemetry


def test_emit_span_from_many_threads_loses_nothing():
    tm = Telemetry()
    threads_n, spans_n = 8, 200

    def worker(i):
        lane = tm.lane(f"worker {i}")
        for j in range(spans_n):
            now = time.monotonic_ns()
            tm.emit_span(f"job {j}", now - 1000, now, tid=lane, worker=i)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(threads_n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(tm.spans) == threads_n * spans_n
    ids = [s.span_id for s in tm.spans]
    assert len(set(ids)) == len(ids)  # ids never collide
    # every worker's spans landed on its own lane, none were cross-wired
    for i in range(threads_n):
        lane = tm.lane(f"worker {i}")
        mine = [s for s in tm.spans if s.tid == lane]
        assert len(mine) == spans_n
        assert all(s.attrs["worker"] == i for s in mine)


def test_lane_allocation_is_bijective_under_contention():
    tm = Telemetry()
    labels = [f"lane {i % 10}" for i in range(200)]
    results = {}

    def worker(start):
        for label in labels[start::4]:
            results.setdefault(label, set()).add(tm.lane(label))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # same label -> same id everywhere; distinct labels -> distinct ids
    assert all(len(ids) == 1 for ids in results.values())
    allocated = [next(iter(ids)) for ids in results.values()]
    assert len(set(allocated)) == len(allocated)


def test_concurrent_tasks_emit_and_merge_without_corruption():
    """The serving shape: asyncio tasks emitting request spans while
    worker snapshots merge into the same session."""
    tm = Telemetry()
    tasks_n, rounds = 6, 20

    def worker_snapshot(i, j):
        local = Telemetry(run_id=tm.run_id)
        with local.span("serve.compute", worker=i, round=j):
            pass
        return local.snapshot()

    async def request_task(i):
        lane = tm.lane("serve")
        for j in range(rounds):
            start = time.monotonic_ns()
            await asyncio.sleep(0)
            tm.merge_snapshot(worker_snapshot(i, j), lane=f"worker {i}")
            tm.emit_span("serve.request", start, time.monotonic_ns(), tid=lane)
            tm.counter("serve.requests")

    async def main():
        await asyncio.gather(*(request_task(i) for i in range(tasks_n)))

    asyncio.run(main())
    requests = [s for s in tm.spans if s.name == "serve.request"]
    computes = [s for s in tm.spans if s.name == "serve.compute"]
    assert len(requests) == tasks_n * rounds
    assert len(computes) == tasks_n * rounds
    ids = [s.span_id for s in tm.spans]
    assert len(set(ids)) == len(ids)
    assert tm.metrics.counters["serve.requests"] == tasks_n * rounds
    # the snapshot taken under load is internally consistent
    snap = tm.snapshot()
    assert len(snap["spans"]) == len(tm.spans)


def test_snapshot_is_consistent_while_writers_run():
    tm = Telemetry()
    per_writer = 500

    def writer():
        for i in range(per_writer):
            now = time.monotonic_ns()
            tm.emit_span("w", now - 10, now)
            tm.instant("tick", i=i)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        # snapshot mid-churn: every copy must be internally consistent
        for _ in range(20):
            snap = tm.snapshot()
            ids = [s["span_id"] for s in snap["spans"]]
            assert len(set(ids)) == len(ids)
            assert len(snap["instants"]) <= 4 * per_writer
    finally:
        for t in threads:
            t.join()
    assert len(tm.spans) == 4 * per_writer
    assert len(tm.instants) == 4 * per_writer


def test_sampler_ring_buffer_accounting_under_threads():
    tm = Telemetry()
    capacity, threads_n, samples_n = 16, 4, 100
    sampler = MetricsSampler(tm, capacity=capacity)

    def worker():
        for _ in range(samples_n):
            tm.counter("ticks")
            sampler.sample_now()

    threads = [threading.Thread(target=worker) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    samples = sampler.samples()
    assert len(samples) == capacity
    total = threads_n * samples_n
    # the full-ring eviction accounting is exact, not approximate
    assert sampler.dropped == total - capacity
    times = [s["t_s"] for s in samples]
    assert times == sorted(times)


def test_sampler_thread_plus_event_loop_reads():
    """A sampler thread runs while an event loop samples and reads —
    the ``repro serve --metrics-series`` shape."""
    tm = Telemetry()
    sampler = MetricsSampler(tm, interval_s=0.001, capacity=64)

    async def main():
        with sampler:
            for i in range(50):
                tm.gauge("serve.queue_depth", i % 5)
                sampler.sample_now()
                assert isinstance(sampler.samples(), list)
                await asyncio.sleep(0.001)

    asyncio.run(main())
    samples = sampler.samples()
    assert samples
    assert len(samples) <= 64
