"""Unit tests for the background metrics sampler and series JSONL."""

import json

import pytest

from repro.telemetry import (
    MetricsSampler,
    Telemetry,
    read_series_jsonl,
    write_series_jsonl,
)
from repro.telemetry.sampler import SERIES_SCHEMA_VERSION


def test_sample_now_copies_counters_and_gauges():
    tm = Telemetry()
    tm.counter("events", 3)
    tm.gauge("depth", 2)
    sampler = MetricsSampler(tm)
    sample = sampler.sample_now()
    assert sample["counters"] == {"events": 3}
    assert sample["gauges"] == {"depth": 2}
    assert sample["t_s"] >= 0
    # the sample is a copy: later bumps don't mutate it
    tm.counter("events", 10)
    assert sample["counters"] == {"events": 3}


def test_samples_ordered_and_monotonic_in_time():
    tm = Telemetry()
    sampler = MetricsSampler(tm)
    for i in range(5):
        tm.counter("ticks")
        sampler.sample_now()
    samples = sampler.samples()
    times = [s["t_s"] for s in samples]
    assert times == sorted(times)
    counts = [s["counters"]["ticks"] for s in samples]
    assert counts == [1, 2, 3, 4, 5]


def test_ring_buffer_bounds_memory_and_counts_evictions():
    tm = Telemetry()
    sampler = MetricsSampler(tm, capacity=3)
    for i in range(7):
        tm.gauge("i", i)
        sampler.sample_now()
    samples = sampler.samples()
    assert len(samples) == 3
    assert [s["gauges"]["i"] for s in samples] == [4, 5, 6]  # oldest evicted
    assert sampler.dropped == 4


def test_background_thread_samples_and_stop_takes_final_sample():
    tm = Telemetry()
    tm.counter("work", 1)
    with MetricsSampler(tm, interval_s=0.005) as sampler:
        deadline = 200
        while not sampler.samples() and deadline:
            import time

            time.sleep(0.005)
            deadline -= 1
    # stop() (via __exit__) always appends a final sample
    assert sampler.samples()
    assert sampler.samples()[-1]["counters"] == {"work": 1}


def test_stop_is_idempotent():
    """Regression: every extra stop() used to append another "final"
    sample (e.g. explicit stop() followed by __exit__), skewing
    tail-of-series rates."""
    tm = Telemetry()
    tm.counter("work", 1)
    with MetricsSampler(tm, interval_s=60.0) as sampler:
        sampler.stop()
        after_first = len(sampler.samples())
        # __exit__ fires here: must not append a second final sample
    assert len(sampler.samples()) == after_first
    sampler.stop()
    sampler.stop()
    assert len(sampler.samples()) == after_first


def test_restart_rearms_final_sample():
    """start() after stop() begins a new run with its own final sample."""
    tm = Telemetry()
    sampler = MetricsSampler(tm, interval_s=60.0)
    sampler.start()
    sampler.stop()
    sampler.start()
    sampler.stop()
    assert len(sampler.samples()) == 2


def test_sampler_rejects_bad_config():
    tm = Telemetry()
    with pytest.raises(ValueError):
        MetricsSampler(tm, interval_s=0)
    with pytest.raises(ValueError):
        MetricsSampler(tm, capacity=0)
    sampler = MetricsSampler(tm)
    sampler.start()
    with pytest.raises(RuntimeError):
        sampler.start()
    sampler.stop()


# -- series JSONL -------------------------------------------------------------


def test_series_jsonl_roundtrip(tmp_path):
    samples = [
        {"t_s": 0.1, "counters": {"events": 1}, "gauges": {}},
        {"t_s": 0.2, "counters": {"events": 5}, "gauges": {"depth": 2}},
    ]
    path = write_series_jsonl(
        samples, tmp_path / "series.jsonl", run_id="abc",
        interval_s=0.05, dropped=3,
    )
    meta, loaded = read_series_jsonl(path)
    assert meta["schema"] == SERIES_SCHEMA_VERSION
    assert meta["run_id"] == "abc"
    assert meta["interval_s"] == 0.05
    assert meta["samples"] == 2
    assert meta["dropped"] == 3
    assert loaded == samples


def test_series_jsonl_one_object_per_line(tmp_path):
    path = write_series_jsonl(
        [{"t_s": 0.0, "counters": {}, "gauges": {}}], tmp_path / "s.jsonl"
    )
    for line in path.read_text().splitlines():
        json.loads(line)  # every line parses standalone


def test_read_series_skips_malformed_lines(tmp_path):
    path = tmp_path / "s.jsonl"
    path.write_text(
        '{"meta": {"schema": 1}}\n'
        "\n"
        "{broken\n"
        '{"t_s": 1.0, "counters": {"a": 2}, "gauges": {}}\n'
    )
    meta, samples = read_series_jsonl(path)
    # blank lines are fine; the "{broken" line is counted, not silent
    assert meta == {"schema": 1, "skipped_lines": 1}
    assert samples == [{"t_s": 1.0, "counters": {"a": 2}, "gauges": {}}]


def test_read_series_counts_unrecognized_objects(tmp_path):
    path = tmp_path / "s.jsonl"
    path.write_text(
        '{"meta": {"schema": 1}}\n'
        '{"neither_meta": "nor sample"}\n'
        "[1, 2, 3]\n"
        '{"t_s": 1.0, "counters": {}, "gauges": {}}\n'
    )
    meta, samples = read_series_jsonl(path)
    assert meta["skipped_lines"] == 2
    assert len(samples) == 1


def test_clean_series_reports_zero_skipped(tmp_path):
    path = write_series_jsonl(
        [{"t_s": 0.0, "counters": {}, "gauges": {}}], tmp_path / "s.jsonl"
    )
    meta, _ = read_series_jsonl(path)
    assert meta["skipped_lines"] == 0


def test_series_report_flags_truncation(tmp_path):
    from repro.telemetry import series_report

    samples = [{"t_s": 0.0, "counters": {"a": 1}, "gauges": {}}]
    assert "WARNING" not in series_report(samples)
    report = series_report(samples, skipped_lines=3)
    assert "3 malformed line(s) skipped" in report
    assert "WARNING" in series_report([], skipped_lines=1)
