"""Unit tests for the telemetry exporters: JSONL trace and reports."""

import json
import math
import time

import pytest

from repro.telemetry import (
    JSONL_SCHEMA_VERSION,
    Telemetry,
    default_series_path,
    default_trace_path,
    prometheus_text,
    read_jsonl,
    render_report,
    stats_report,
    trace_metrics,
    write_jsonl,
)


@pytest.fixture
def session():
    tm = Telemetry()
    with tm.span("outer", program="gzip"):
        with tm.span("inner"):
            pass
    tm.counter("events", 10)
    tm.gauge("nodes", 17)
    tm.observe("dwell", 3)
    return tm


# -- JSONL schema -------------------------------------------------------------


def test_jsonl_one_valid_json_object_per_line(tmp_path, session):
    path = write_jsonl(session, tmp_path / "trace.jsonl")
    lines = path.read_text().splitlines()
    events = [json.loads(line) for line in lines]  # every line parses
    assert all(
        {"name", "cat", "ph", "ts", "pid", "tid", "args"} <= set(e) for e in events
    )


def test_jsonl_meta_line_first_with_schema_version(tmp_path, session):
    path = write_jsonl(session, tmp_path / "trace.jsonl")
    meta = json.loads(path.read_text().splitlines()[0])
    assert meta["ph"] == "M" and meta["cat"] == "meta"
    assert meta["args"]["schema"] == JSONL_SCHEMA_VERSION


def test_jsonl_span_events_chrome_compatible(tmp_path, session):
    events = read_jsonl(write_jsonl(session, tmp_path / "trace.jsonl"))
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"outer", "inner"}
    inner = next(e for e in spans if e["name"] == "inner")
    assert inner["args"]["path"] == "outer/inner"
    assert inner["dur"] >= 0 and inner["ts"] >= 0
    outer = next(e for e in spans if e["name"] == "outer")
    assert outer["args"]["program"] == "gzip"


def test_jsonl_metric_events(tmp_path, session):
    events = read_jsonl(write_jsonl(session, tmp_path / "trace.jsonl"))
    by_cat = {}
    for e in events:
        by_cat.setdefault(e["cat"], []).append(e)
    assert by_cat["counter"][0]["args"] == {"value": 10}
    assert by_cat["gauge"][0]["args"] == {"value": 17}
    assert by_cat["histogram"][0]["args"] == {"[2, 4)": 1}
    assert all(e["ph"] == "C" for cat in ("counter", "gauge") for e in by_cat[cat])


def test_jsonl_header_carries_run_id_and_lane_names(tmp_path, session):
    session.lane("shard 0")
    events = read_jsonl(write_jsonl(session, tmp_path / "trace.jsonl"))
    header = events[0]
    assert header["args"]["run_id"] == session.run_id
    names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names[0] == "main"
    assert names[session.lane("shard 0")] == "shard 0"
    process = next(e for e in events if e["name"] == "process_name")
    assert session.run_id in process["args"]["name"]


def test_jsonl_roundtrip_unicode_attrs(tmp_path):
    tm = Telemetry()
    with tm.span("étape", workload="gzip — compresión 👍"):
        pass
    tm.counter("événements", 2)
    events = read_jsonl(write_jsonl(tm, tmp_path / "trace.jsonl"))
    span = next(e for e in events if e["ph"] == "X")
    assert span["name"] == "étape"
    assert span["args"]["workload"] == "gzip — compresión 👍"
    counters, _, _ = trace_metrics(events)
    assert counters["événements"] == 2


def test_jsonl_roundtrip_nonfinite_span_attrs(tmp_path):
    """NaN/inf span attributes survive the write/read cycle (json
    emits bare NaN/Infinity tokens and parses them back)."""
    tm = Telemetry()
    with tm.span("work", cov=float("nan"), limit=float("inf")):
        pass
    events = read_jsonl(write_jsonl(tm, tmp_path / "trace.jsonl"))
    span = next(e for e in events if e["ph"] == "X")
    assert math.isnan(span["args"]["cov"])
    assert span["args"]["limit"] == float("inf")


def test_jsonl_multi_lane_events_share_pid(tmp_path):
    """Merged worker spans and instants export under one pid, spread
    across tids, with origin pids kept as args.worker_pid."""
    worker = Telemetry(run_id="r")
    with worker.span("job"):
        worker.emit_span(
            "walk", worker.epoch_ns, worker.epoch_ns + 1000,
            tid=worker.lane("shard 1"),
        )
    worker_snap = worker.snapshot()
    # simulate a different origin process
    worker_snap["pid"] = 4242
    for span in worker_snap["spans"]:
        span["pid"] = 4242

    parent = Telemetry(run_id="r")
    with parent.span("pool"):
        parent.merge_snapshot(worker_snap)
    parent.instant("phase_change", tid=parent.lane("phase 1"), new_phase=1)
    events = read_jsonl(write_jsonl(parent, tmp_path / "trace.jsonl"))

    assert {e["pid"] for e in events} == {parent.pid}
    spans = {e["name"]: e for e in events if e["ph"] == "X"}
    assert spans["job"]["args"]["worker_pid"] == 4242
    assert spans["pool"]["tid"] == 0
    assert spans["job"]["tid"] != spans["walk"]["tid"] != 0
    instants = [e for e in events if e["ph"] == "i"]
    assert instants and instants[0]["name"] == "phase_change"
    assert instants[0]["s"] == "t"


def test_jsonl_empty_session_export(tmp_path):
    """A session with no spans/metrics still writes a valid trace:
    header + process/lane metadata only."""
    tm = Telemetry()
    events = read_jsonl(write_jsonl(tm, tmp_path / "trace.jsonl"))
    assert events and all(e["ph"] == "M" for e in events)
    assert stats_report(events) == (
        "Telemetry: trace contains no spans or metrics"
    )


def test_read_jsonl_skips_blank_and_malformed_lines(tmp_path, session):
    path = write_jsonl(session, tmp_path / "trace.jsonl")
    clean = len(read_jsonl(path))
    with open(path, "a") as f:
        f.write("\n{truncated\n")
    assert len(read_jsonl(path)) == clean  # blank + malformed both skipped


# -- reports ------------------------------------------------------------------


def test_render_report_contains_span_tree_and_metrics(session):
    report = render_report(session)
    assert "Telemetry: per-stage spans" in report
    assert "  inner" in report  # child indented under parent
    assert "Telemetry: counters and gauges" in report
    assert "nodes (gauge)" in report
    assert "Telemetry: histograms" in report


def test_render_report_empty_session():
    assert render_report(Telemetry()) == "Telemetry: no spans or metrics recorded"


def test_stats_report_roundtrips_through_jsonl(tmp_path, session):
    events = read_jsonl(write_jsonl(session, tmp_path / "trace.jsonl"))
    report = stats_report(events, source="trace.jsonl")
    assert "Telemetry: per-stage spans (trace.jsonl)" in report
    assert "outer" in report and "  inner" in report
    assert "events" in report and "10" in report


def test_stats_report_empty_trace():
    assert stats_report([]) == "Telemetry: trace contains no spans or metrics"


def test_default_trace_path_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
    assert default_trace_path() == tmp_path / "last-run.jsonl"
    assert default_series_path() == tmp_path / "last-series.jsonl"


# -- Prometheus text exposition -----------------------------------------------


def test_prometheus_text_counters_and_gauges():
    text = prometheus_text(
        {"callloop.walk.events": 42}, {"runner.pool.workers": 4}, {}
    )
    assert "# TYPE repro_callloop_walk_events_total counter" in text
    assert "repro_callloop_walk_events_total 42" in text
    assert "# TYPE repro_runner_pool_workers gauge" in text
    assert "repro_runner_pool_workers 4" in text
    assert text.endswith("\n")


def test_prometheus_text_histogram_cumulative_buckets():
    tm = Telemetry()
    for v in (0, 0.3, 3, 1000):
        tm.observe("dwell", v)
    hist = dict(tm.metrics.histograms["dwell"].rows())
    text = prometheus_text({}, {}, {"dwell": hist})
    lines = text.splitlines()
    buckets = [l for l in lines if "_bucket" in l]
    # cumulative counts, ascending by bound, closed with +Inf
    assert buckets[0] == 'repro_dwell_bucket{le="0"} 1'
    assert buckets[-1] == 'repro_dwell_bucket{le="+Inf"} 4'
    counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
    assert counts == sorted(counts)
    assert "repro_dwell_count 4" in lines
    # thousands separators in bucket labels parse back to real bounds
    assert any('le="1024"' in l for l in buckets)


def test_prometheus_text_empty():
    assert prometheus_text({}, {}, {}) == ""
