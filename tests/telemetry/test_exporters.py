"""Unit tests for the telemetry exporters: JSONL trace and reports."""

import json

import pytest

from repro.telemetry import (
    JSONL_SCHEMA_VERSION,
    Telemetry,
    default_trace_path,
    read_jsonl,
    render_report,
    stats_report,
    write_jsonl,
)


@pytest.fixture
def session():
    tm = Telemetry()
    with tm.span("outer", program="gzip"):
        with tm.span("inner"):
            pass
    tm.counter("events", 10)
    tm.gauge("nodes", 17)
    tm.observe("dwell", 3)
    return tm


# -- JSONL schema -------------------------------------------------------------


def test_jsonl_one_valid_json_object_per_line(tmp_path, session):
    path = write_jsonl(session, tmp_path / "trace.jsonl")
    lines = path.read_text().splitlines()
    events = [json.loads(line) for line in lines]  # every line parses
    assert all(
        {"name", "cat", "ph", "ts", "pid", "tid", "args"} <= set(e) for e in events
    )


def test_jsonl_meta_line_first_with_schema_version(tmp_path, session):
    path = write_jsonl(session, tmp_path / "trace.jsonl")
    meta = json.loads(path.read_text().splitlines()[0])
    assert meta["ph"] == "M" and meta["cat"] == "meta"
    assert meta["args"]["schema"] == JSONL_SCHEMA_VERSION


def test_jsonl_span_events_chrome_compatible(tmp_path, session):
    events = read_jsonl(write_jsonl(session, tmp_path / "trace.jsonl"))
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"outer", "inner"}
    inner = next(e for e in spans if e["name"] == "inner")
    assert inner["args"]["path"] == "outer/inner"
    assert inner["dur"] >= 0 and inner["ts"] >= 0
    outer = next(e for e in spans if e["name"] == "outer")
    assert outer["args"]["program"] == "gzip"


def test_jsonl_metric_events(tmp_path, session):
    events = read_jsonl(write_jsonl(session, tmp_path / "trace.jsonl"))
    by_cat = {}
    for e in events:
        by_cat.setdefault(e["cat"], []).append(e)
    assert by_cat["counter"][0]["args"] == {"value": 10}
    assert by_cat["gauge"][0]["args"] == {"value": 17}
    assert by_cat["histogram"][0]["args"] == {"[2, 4)": 1}
    assert all(e["ph"] == "C" for cat in ("counter", "gauge") for e in by_cat[cat])


def test_read_jsonl_skips_blank_and_malformed_lines(tmp_path, session):
    path = write_jsonl(session, tmp_path / "trace.jsonl")
    clean = len(read_jsonl(path))
    with open(path, "a") as f:
        f.write("\n{truncated\n")
    assert len(read_jsonl(path)) == clean  # blank + malformed both skipped


# -- reports ------------------------------------------------------------------


def test_render_report_contains_span_tree_and_metrics(session):
    report = render_report(session)
    assert "Telemetry: per-stage spans" in report
    assert "  inner" in report  # child indented under parent
    assert "Telemetry: counters and gauges" in report
    assert "nodes (gauge)" in report
    assert "Telemetry: histograms" in report


def test_render_report_empty_session():
    assert render_report(Telemetry()) == "Telemetry: no spans or metrics recorded"


def test_stats_report_roundtrips_through_jsonl(tmp_path, session):
    events = read_jsonl(write_jsonl(session, tmp_path / "trace.jsonl"))
    report = stats_report(events, source="trace.jsonl")
    assert "Telemetry: per-stage spans (trace.jsonl)" in report
    assert "outer" in report and "  inner" in report
    assert "events" in report and "10" in report


def test_stats_report_empty_trace():
    assert stats_report([]) == "Telemetry: trace contains no spans or metrics"


def test_default_trace_path_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
    assert default_trace_path() == tmp_path / "last-run.jsonl"
