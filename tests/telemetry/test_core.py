"""Unit tests for the telemetry core: spans, metrics, sessions."""

import pytest

from repro.telemetry import (
    Histogram,
    NoopTelemetry,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    get_telemetry,
    install_telemetry,
    telemetry_session,
    timed,
)


@pytest.fixture(autouse=True)
def _no_global_session():
    """Keep the process-wide session pristine around every test."""
    prev = install_telemetry(None)
    yield
    install_telemetry(prev)


# -- span nesting -------------------------------------------------------------


def test_span_nesting_parent_child_and_path():
    tm = Telemetry()
    with tm.span("outer"):
        with tm.span("inner"):
            pass
    inner, outer = tm.spans  # children close (and record) first
    assert inner.name == "inner" and outer.name == "outer"
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert inner.path == "outer/inner"
    assert outer.path == "outer"


def test_span_timings_are_monotonic_and_nested():
    tm = Telemetry()
    with tm.span("outer"):
        with tm.span("inner"):
            pass
    inner, outer = tm.spans
    assert outer.duration_us >= inner.duration_us >= 0
    assert outer.start_us <= inner.start_us
    assert outer.seconds == pytest.approx(outer.duration_us / 1e6)


def test_span_attrs_static_and_dynamic():
    tm = Telemetry()
    with tm.span("work", program="gzip") as span:
        span.set("events", 42)
    (record,) = tm.spans
    assert record.attrs == {"program": "gzip", "events": 42}


def test_span_exception_safety():
    """A raising block still closes its span, tagged with the error."""
    tm = Telemetry()
    with pytest.raises(ValueError):
        with tm.span("outer"):
            with tm.span("inner"):
                raise ValueError("boom")
    inner, outer = tm.spans
    assert inner.attrs["error"] == "ValueError"
    assert outer.attrs["error"] == "ValueError"
    assert tm.current_span is None  # stack fully unwound


def test_record_span_preserves_duration_and_parent():
    tm = Telemetry()
    with tm.span("outer"):
        record = tm.record_span("acquire", 1.5, source="cache")
    assert record.seconds == pytest.approx(1.5)
    assert record.path == "outer/acquire"
    assert record.attrs == {"source": "cache"}


def test_sibling_spans_share_parent():
    tm = Telemetry()
    with tm.span("outer"):
        with tm.span("a"):
            pass
        with tm.span("b"):
            pass
    a, b, outer = tm.spans
    assert a.parent_id == b.parent_id == outer.span_id
    assert {a.path, b.path} == {"outer/a", "outer/b"}


# -- metrics ------------------------------------------------------------------


def test_counter_aggregation():
    tm = Telemetry()
    tm.counter("events")
    tm.counter("events")
    tm.counter("events", 40)
    assert tm.metrics.counters["events"] == 42


def test_gauge_overwrites():
    tm = Telemetry()
    tm.gauge("depth", 3)
    tm.gauge("depth", 7)
    assert tm.metrics.gauges["depth"] == 7


def test_histogram_power_of_two_buckets():
    hist = Histogram()
    for value in (0, 1, 2, 3, 4, 1000):
        hist.observe(value)
    rows = dict(hist.rows())
    assert rows["0"] == 1  # exact zero gets its own bucket
    assert rows["[1, 2)"] == 1  # 1
    assert rows["[2, 4)"] == 2  # 2, 3
    assert rows["[4, 8)"] == 1  # 4
    assert rows["[512, 1,024)"] == 1  # 1000
    assert hist.total == 6


def test_histogram_fractional_buckets():
    """Sub-second (sub-unit) values keep their resolution instead of
    collapsing into one bucket — the bucket index is the binary
    exponent, which is negative below 1."""
    hist = Histogram()
    for value in (0.001, 0.3, 0.6, 0.75):
        hist.observe(value)
    rows = dict(hist.rows())
    assert rows["[0.25, 0.5)"] == 1  # 0.3
    assert rows["[0.5, 1)"] == 2  # 0.6, 0.75
    assert rows["[0.000976562, 0.00195312)"] == 1  # 0.001
    assert hist.total == 4


def test_histogram_negative_and_nan_counted_invalid():
    hist = Histogram()
    hist.observe(-5)
    hist.observe(float("nan"))
    hist.observe(2)
    assert hist.invalid == 2
    assert hist.total == 3
    # invalid observations land in the zero bucket, never a value bucket
    rows = dict(hist.rows())
    assert rows["0"] == 2
    assert rows["[2, 4)"] == 1


def test_histogram_infinity_bucket():
    hist = Histogram()
    hist.observe(float("inf"))
    assert dict(hist.rows()) == {"inf": 1}
    assert hist.invalid == 0


def test_observe_feeds_named_histogram():
    tm = Telemetry()
    tm.observe("dwell", 5)
    tm.observe("dwell", 6)
    assert tm.metrics.histograms["dwell"].total == 2


# -- snapshot / merge ---------------------------------------------------------


def test_snapshot_roundtrip_merge():
    worker = Telemetry()
    with worker.span("job", which="ref"):
        worker.counter("events", 10)
    snap = worker.snapshot()

    parent = Telemetry()
    parent.counter("events", 5)
    with parent.span("pool"):
        parent.merge_snapshot(snap)
    assert parent.metrics.counters["events"] == 15
    job = next(s for s in parent.spans if s.name == "job")
    pool = next(s for s in parent.spans if s.name == "pool")
    assert job.parent_id == pool.span_id  # re-parented under the open span
    assert job.path == "pool/job"
    assert job.attrs == {"which": "ref"}
    assert job.duration_us == pytest.approx(
        next(s for s in worker.spans if s.name == "job").duration_us
    )


def test_merge_snapshot_tolerates_empty():
    tm = Telemetry()
    tm.merge_snapshot(None)
    tm.merge_snapshot({})
    assert not tm.spans


def test_gauge_merge_is_order_independent():
    """Merging the same worker snapshots in either completion order
    yields identical gauges (max policy, not last-write-wins)."""
    snap_a = {"gauges": {"depth": 3.0, "only_a": 1.0}}
    snap_b = {"gauges": {"depth": 7.0}}

    ab = Telemetry()
    ab.metrics.merge(snap_a)
    ab.metrics.merge(snap_b)
    ba = Telemetry()
    ba.metrics.merge(snap_b)
    ba.metrics.merge(snap_a)
    assert ab.metrics.gauges == ba.metrics.gauges == {
        "depth": 7.0,
        "only_a": 1.0,
    }


# -- lanes / stitching --------------------------------------------------------


def test_lane_allocation_is_memoized():
    tm = Telemetry()
    shard0 = tm.lane("shard 0")
    shard1 = tm.lane("shard 1")
    assert tm.lane("shard 0") == shard0
    assert shard0 != shard1 != 0
    assert tm.lane_labels[shard0] == "shard 0"
    assert tm.lane_labels[0] == "main"


def test_emit_span_lands_on_lane_and_parents_under_open_span():
    import time

    tm = Telemetry()
    t0 = time.monotonic_ns()
    t1 = t0 + 2_000_000  # 2 ms
    with tm.span("stage"):
        record = tm.emit_span(
            "walk", t0, t1, tid=tm.lane("shard 0"), segment=0
        )
    assert record.tid == tm.lane("shard 0")
    assert record.duration_us == pytest.approx(2000.0)
    assert record.path == "stage/walk"
    assert record.attrs == {"segment": 0}
    stage = next(s for s in tm.spans if s.name == "stage")
    assert record.parent_id == stage.span_id


def test_instant_records_on_lane():
    tm = Telemetry()
    record = tm.instant("phase_change", tid=tm.lane("phase 3"), new_phase=3)
    assert record.tid == tm.lane("phase 3")
    assert record.attrs == {"new_phase": 3}
    assert tm.instants == [record]


def test_merge_snapshot_remaps_worker_lanes():
    """A worker's main lane becomes "worker <pid>"; its inner lanes
    keep their identity as "worker <pid> · <label>"."""
    worker = Telemetry(run_id="run0")
    with worker.span("job"):
        worker.emit_span(
            "walk", worker.epoch_ns, worker.epoch_ns + 1000,
            tid=worker.lane("shard 0"),
        )
    snap = worker.snapshot()

    parent = Telemetry(run_id="run0")
    parent.merge_snapshot(snap)
    job = next(s for s in parent.spans if s.name == "job")
    walk = next(s for s in parent.spans if s.name == "walk")
    assert parent.lane_labels[job.tid] == f"worker {worker.pid}"
    assert parent.lane_labels[walk.tid] == f"worker {worker.pid} · shard 0"
    assert job.tid != walk.tid != 0


def test_merge_snapshot_explicit_lane_label():
    worker = Telemetry(run_id="run0")
    with worker.span("job"):
        pass
    parent = Telemetry(run_id="run0")
    parent.merge_snapshot(worker.snapshot(), lane="replay 2")
    (job,) = parent.spans
    assert parent.lane_labels[job.tid] == "replay 2"


def test_merge_snapshot_propagates_run_id_and_counts_mismatch():
    parent = Telemetry()
    worker = Telemetry(run_id=parent.run_id)
    with worker.span("job"):
        pass
    parent.merge_snapshot(worker.snapshot())
    assert "telemetry.merge.run_id_mismatch" not in parent.metrics.counters

    stranger = Telemetry(run_id="someone-else")
    with stranger.span("job"):
        pass
    parent.merge_snapshot(stranger.snapshot())
    assert parent.metrics.counters["telemetry.merge.run_id_mismatch"] == 1


def test_merge_snapshot_rebases_instants():
    worker = Telemetry(run_id="run0")
    worker.instant("phase_change", new_phase=2)
    parent = Telemetry(run_id="run0")
    parent.merge_snapshot(worker.snapshot())
    (inst,) = parent.instants
    assert inst.name == "phase_change"
    assert parent.lane_labels[inst.tid] == f"worker {worker.pid}"
    # rebasing: worker instant timestamp shifts by the epoch delta
    delta_us = (worker.epoch_ns - parent.epoch_ns) / 1000.0
    assert inst.ts_us == pytest.approx(
        worker.instants[0].ts_us + delta_us
    )


# -- global session / no-op path ----------------------------------------------


def test_disabled_by_default_returns_noop():
    assert isinstance(get_telemetry(), NoopTelemetry)
    assert not get_telemetry().enabled


def test_noop_path_records_nothing():
    tm = get_telemetry()
    with tm.span("work", program="gzip") as span:
        span.set("events", 1)
    tm.counter("c")
    tm.gauge("g", 1)
    tm.observe("h", 1)
    tm.record_span("s", 1.0)
    tm.merge_snapshot({"spans": [], "metrics": {}})
    assert tm.spans == []
    assert tm.snapshot() == {}
    assert tm.current_span is None


def test_enable_disable_cycle():
    tm = enable_telemetry()
    assert get_telemetry() is tm and tm.enabled
    assert disable_telemetry() is tm
    assert isinstance(get_telemetry(), NoopTelemetry)


def test_telemetry_session_scoped_install():
    with telemetry_session() as tm:
        assert get_telemetry() is tm
    assert isinstance(get_telemetry(), NoopTelemetry)


def test_timed_decorator_resolves_session_at_call_time():
    @timed("compute", kind="test")
    def compute(x):
        return x * 2

    assert compute(2) == 4  # disabled: no session, no spans
    with telemetry_session() as tm:
        assert compute(3) == 6
    (record,) = tm.spans
    assert record.name == "compute"
    assert record.attrs == {"kind": "test"}


def test_timed_decorator_default_label():
    @timed()
    def work():
        return 1

    with telemetry_session() as tm:
        work()
    assert tm.spans[0].name.endswith("work")
