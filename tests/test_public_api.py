"""Integration test of the package's top-level public API."""

import numpy as np

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__


def test_quickstart_pipeline():
    markers, intervals = repro.quickstart_pipeline("vortex")
    assert len(markers) >= 1
    assert len(intervals) >= 2
    assert intervals.cpis is not None
    intervals.check_partition(intervals.total_instructions)
    # phase homogeneity beats whole-program variability
    from repro.analysis import phase_cov, whole_program_cov

    assert phase_cov(intervals).overall <= whole_program_cov(intervals) + 1e-9
