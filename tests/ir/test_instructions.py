"""Unit tests for instruction mixes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.instructions import InstructionMix, OpClass, mix_of


class TestInstructionMix:
    def test_size_sums_all_classes(self):
        mix = InstructionMix(int_alu=3, fp_alu=2, loads=4, stores=1, branches=2)
        assert mix.size == 12

    def test_mem_ops(self):
        mix = InstructionMix(int_alu=1, loads=4, stores=3)
        assert mix.mem_ops == 7

    def test_count_per_class(self):
        mix = InstructionMix(int_alu=3, fp_alu=2, loads=4, stores=1, branches=5)
        assert mix.count(OpClass.INT_ALU) == 3
        assert mix.count(OpClass.FP_ALU) == 2
        assert mix.count(OpClass.LOAD) == 4
        assert mix.count(OpClass.STORE) == 1
        assert mix.count(OpClass.BRANCH) == 5

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            InstructionMix(int_alu=-1, loads=2)

    def test_scaled_preserves_branches(self):
        mix = InstructionMix(int_alu=10, loads=4, branches=2)
        scaled = mix.scaled(2.0)
        assert scaled.branches == 2
        assert scaled.int_alu == 20
        assert scaled.loads == 8

    def test_scaled_never_empty(self):
        mix = InstructionMix(int_alu=1)
        scaled = mix.scaled(0.01)
        assert scaled.size >= 1


class TestMixOf:
    def test_basic(self):
        mix = mix_of(10, loads=2, stores=1, branches=1)
        assert mix.size == 10
        assert mix.loads == 2
        assert mix.stores == 1
        assert mix.branches == 1
        assert mix.int_alu == 6

    def test_fp_fraction(self):
        mix = mix_of(20, loads=4, fp_fraction=0.5)
        assert mix.fp_alu == 8
        assert mix.int_alu == 8
        assert mix.size == 20

    def test_oversized_mem_rejected(self):
        with pytest.raises(ValueError):
            mix_of(3, loads=2, stores=2)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            mix_of(0)

    @given(
        size=st.integers(1, 500),
        loads=st.integers(0, 100),
        stores=st.integers(0, 100),
        fp=st.floats(0, 1),
    )
    def test_size_invariant(self, size, loads, stores, fp):
        if loads + stores > size:
            return
        mix = mix_of(size, loads=loads, stores=stores, fp_fraction=fp)
        assert mix.size == size
        assert mix.mem_ops == loads + stores
