"""Unit tests for Program layout and queries."""

import pytest

from repro.ir import ProgramBuilder
from repro.ir.program import INSTRUCTION_BYTES, ProgramInput


def build_two_proc():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(10)
        b.call("f")
    with b.proc("f"):
        b.code(4)
    return b.build()


def test_procedures_have_disjoint_address_ranges():
    prog = build_two_proc()
    main = prog.procedures["main"]
    f = prog.procedures["f"]
    main_end = max(blk.address + blk.size * INSTRUCTION_BYTES for blk in main.blocks)
    assert f.base_address >= main_end


def test_block_addresses_follow_offsets():
    prog = build_two_proc()
    for proc in prog.procedures.values():
        for blk in proc.blocks:
            assert blk.address == proc.base_address + blk.offset * INSTRUCTION_BYTES


def test_end_address_is_last_instruction():
    prog = build_two_proc()
    blk = prog.procedures["main"].blocks[0]
    assert blk.end_address == blk.address + (blk.size - 1) * INSTRUCTION_BYTES


def test_block_at_lookup():
    prog = build_two_proc()
    blk = prog.blocks[0]
    assert prog.block_at(blk.address) is blk


def test_procedure_by_id():
    prog = build_two_proc()
    f = prog.procedures["f"]
    assert prog.procedure_by_id(f.proc_id) is f


def test_block_sizes_vector():
    prog = build_two_proc()
    sizes = prog.block_sizes()
    assert len(sizes) == prog.num_blocks
    for blk in prog.blocks:
        assert sizes[blk.block_id] == blk.size


def test_missing_entry_rejected():
    b = ProgramBuilder("p", entry="nope")
    with b.proc("main"):
        b.code(1)
    with pytest.raises(ValueError):
        b.build()


def test_static_instruction_count():
    prog = build_two_proc()
    assert prog.static_instruction_count() == sum(b.size for b in prog.blocks)


class TestProgramInput:
    def test_with_seed(self):
        inp = ProgramInput("ref", {"n": 5}, seed=1)
        other = inp.with_seed(2)
        assert other.seed == 2
        assert other.params == {"n": 5}
        assert inp.seed == 1

    def test_key(self):
        assert ProgramInput("a", {}, 3).key() == ("a", 3)
