"""Unit tests for trip-count and probability models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.trips import (
    ChoiceTrips,
    FixedProb,
    FixedTrips,
    LambdaTrips,
    NormalTrips,
    ParamProb,
    ParamTrips,
    UniformTrips,
    as_prob,
    as_trips,
)


def rng():
    return np.random.default_rng(42)


class TestFixedTrips:
    def test_always_n(self):
        t = FixedTrips(7)
        assert all(t.sample({}, rng()) == 7 for _ in range(5))
        assert t.mean({}) == 7.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedTrips(-1)


class TestParamTrips:
    def test_reads_param(self):
        t = ParamTrips("files", scale=2.0, offset=1.0)
        assert t.sample({"files": 10}, rng()) == 21

    def test_missing_param_raises(self):
        with pytest.raises(KeyError):
            ParamTrips("missing").sample({}, rng())

    def test_never_negative(self):
        t = ParamTrips("x", scale=-5.0)
        assert t.sample({"x": 10}, rng()) == 0


class TestNormalTrips:
    def test_mean_and_cov(self):
        t = NormalTrips(1000, 0.1)
        g = rng()
        samples = np.array([t.sample({}, g) for _ in range(2000)])
        assert abs(samples.mean() - 1000) < 20
        assert abs(samples.std() / samples.mean() - 0.1) < 0.02

    def test_param_mean(self):
        t = NormalTrips("n", 0.0)
        assert t.sample({"n": 50}, rng()) == 50

    def test_minimum_respected(self):
        t = NormalTrips(1, 5.0, minimum=1)
        g = rng()
        assert all(t.sample({}, g) >= 1 for _ in range(200))


class TestUniformTrips:
    def test_bounds(self):
        t = UniformTrips(3, 9)
        g = rng()
        samples = [t.sample({}, g) for _ in range(300)]
        assert min(samples) >= 3 and max(samples) <= 9
        assert t.mean({}) == 6.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformTrips(5, 2)


class TestChoiceTrips:
    def test_values_respected(self):
        t = ChoiceTrips((2, 50), weights=(0.5, 0.5))
        g = rng()
        assert set(t.sample({}, g) for _ in range(200)) == {2, 50}

    def test_mean_weighted(self):
        t = ChoiceTrips((0, 100), weights=(0.9, 0.1))
        assert t.mean({}) == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChoiceTrips(())

    def test_weight_length_checked(self):
        with pytest.raises(ValueError):
            ChoiceTrips((1, 2), weights=(1.0,))


class TestLambdaTrips:
    def test_callable_used(self):
        t = LambdaTrips(lambda p, r: int(p["a"] + 1), expected=5.0)
        assert t.sample({"a": 3}, rng()) == 4
        assert t.mean({}) == 5.0


class TestProb:
    def test_fixed_bounds(self):
        with pytest.raises(ValueError):
            FixedProb(1.5)
        assert FixedProb(0.25).value({}) == 0.25

    def test_param_prob_clamped(self):
        p = ParamProb("x", scale=2.0)
        assert p.value({"x": 10}) == 1.0
        assert p.value({}) == 0.0


class TestCoercion:
    def test_as_trips(self):
        assert isinstance(as_trips(5), FixedTrips)
        assert isinstance(as_trips("n"), ParamTrips)
        t = FixedTrips(2)
        assert as_trips(t) is t
        with pytest.raises(TypeError):
            as_trips(1.5)

    def test_as_prob(self):
        assert isinstance(as_prob(0.5), FixedProb)
        assert isinstance(as_prob("p"), ParamProb)
        with pytest.raises(TypeError):
            as_prob([])

    @given(st.integers(0, 10_000))
    def test_fixed_roundtrip(self, n):
        assert as_trips(n).sample({}, rng()) == n
