"""Unit tests for IR validation."""

import pytest

from repro.ir import ProgramBuilder, validate_program
from repro.ir.validate import (
    ValidationError,
    estimate_dynamic_instructions,
    has_recursion,
)


def test_valid_program_passes(toy_program):
    validate_program(toy_program)


def test_undefined_callee_detected():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.call("ghost")
    prog = b.build()
    with pytest.raises(ValidationError, match="ghost"):
        validate_program(prog)


def test_unreachable_procedure_detected():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(1)
    with b.proc("orphan"):
        b.code(1)
    prog = b.build()
    with pytest.raises(ValidationError, match="orphan"):
        validate_program(prog)
    validate_program(prog, allow_unreachable=True)


def test_recursion_detected(recursive_program, toy_program):
    assert has_recursion(recursive_program)
    assert not has_recursion(toy_program)


def test_mutual_recursion_detected():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.call("a")
    with b.proc("a"):
        with b.if_(0.5):
            b.call("b")
    with b.proc("b"):
        b.call("a")
    assert has_recursion(b.build())


class TestEstimate:
    def test_straight_line(self):
        b = ProgramBuilder("p")
        with b.proc("main"):
            b.code(10)
            b.code(20)
        est = estimate_dynamic_instructions(b.build(), {})
        assert est == 30

    def test_loop_scales_body(self):
        b = ProgramBuilder("p")
        with b.proc("main"):
            with b.loop("l", trips=10):
                b.code(8)
        prog = b.build()
        est = estimate_dynamic_instructions(prog, {})
        loop = prog.procedures["main"].body[0]
        per_iter = loop.header_block.size + 8 + loop.latch_block.size
        assert est == pytest.approx(10 * per_iter)

    def test_if_weights_sides(self):
        b = ProgramBuilder("p")
        with b.proc("main"):
            with b.if_(0.25):
                b.code(100)
            with b.else_():
                b.code(20)
        prog = b.build()
        cond = prog.procedures["main"].body[0].cond_block.size
        assert estimate_dynamic_instructions(prog, {}) == pytest.approx(
            cond + 0.25 * 100 + 0.75 * 20
        )

    def test_param_dependent(self):
        b = ProgramBuilder("p")
        with b.proc("main"):
            with b.loop("l", trips="n"):
                b.code(6)
        prog = b.build()
        small = estimate_dynamic_instructions(prog, {"n": 10})
        large = estimate_dynamic_instructions(prog, {"n": 100})
        assert large > small * 8

    def test_recursion_terminates(self, recursive_program):
        est = estimate_dynamic_instructions(recursive_program, {})
        assert est > 0
