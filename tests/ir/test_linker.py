"""Unit tests for compilation variants (the substitute linker)."""

import pytest

from repro.ir import ProgramBuilder, validate_program
from repro.ir.linker import (
    ALPHA_BASE,
    ALPHA_O0,
    ALPHA_PEAK,
    X86_LINUX,
    CompilationVariant,
    link,
)
from repro.ir.program import CallStmt, IfStmt, LoopStmt


def test_identity_variant_preserves_sizes(toy_program):
    out = link(toy_program, ALPHA_BASE)
    for old, new in zip(toy_program.blocks, out.blocks):
        assert new.size == old.size
        assert new.source == old.source


def test_o0_grows_code(toy_program):
    out = link(toy_program, ALPHA_O0)
    assert out.static_instruction_count() > toy_program.static_instruction_count()
    assert out.variant == "alpha-O0"


def test_peak_shrinks_code(toy_program):
    out = link(toy_program, ALPHA_PEAK)
    assert out.static_instruction_count() < toy_program.static_instruction_count()


def test_variant_is_valid_program(toy_program):
    for variant in (ALPHA_O0, ALPHA_PEAK, X86_LINUX):
        validate_program(link(toy_program, variant))


def test_structure_preserved(toy_program):
    out = link(toy_program, X86_LINUX)
    assert set(out.procedures) == set(toy_program.procedures)

    def shape(stmts):
        result = []
        for s in stmts:
            if isinstance(s, LoopStmt):
                result.append(("loop", s.label, shape(s.body)))
            elif isinstance(s, CallStmt):
                result.append(("call", s.callee))
            elif isinstance(s, IfStmt):
                result.append(("if", shape(s.then_body), shape(s.else_body)))
            else:
                result.append("block")
        return result

    for name in toy_program.procedures:
        assert shape(toy_program.procedures[name].body) == shape(
            out.procedures[name].body
        )


def test_jitter_varies_per_block(toy_program):
    out = link(toy_program, X86_LINUX)
    ratios = {
        new.size / old.size
        for old, new in zip(toy_program.blocks, out.blocks)
        if old.size >= 5
    }
    assert len(ratios) > 1  # not a uniform rescale


def test_latch_terminators_repaired(toy_program):
    out = link(toy_program, ALPHA_O0)
    from repro.callloop.loops import discover_loops

    old_loops = discover_loops(toy_program)
    new_loops = discover_loops(out)
    assert len(old_loops) == len(new_loops)
    # loop identities (source-anchored) survive the recompile
    assert {l.uid for l in old_loops.values()} == {l.uid for l in new_loops.values()}


def test_deterministic(toy_program):
    a = link(toy_program, X86_LINUX)
    b = link(toy_program, X86_LINUX)
    assert [blk.size for blk in a.blocks] == [blk.size for blk in b.blocks]


def test_invalid_size_factor(toy_program):
    with pytest.raises(ValueError):
        link(toy_program, CompilationVariant("bad", size_factor=0.0))
