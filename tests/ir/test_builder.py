"""Unit tests for the program builder DSL."""

import pytest

from repro.ir import ProgramBuilder
from repro.ir.builder import BuildError
from repro.ir.program import (
    BlockStmt,
    CallStmt,
    IfStmt,
    LoopStmt,
    SwitchStmt,
    TermKind,
)


def test_simple_program():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(10)
    prog = b.build()
    assert prog.name == "p"
    assert "main" in prog.procedures
    assert prog.procedures["main"].blocks[0].size == 10


def test_block_offsets_monotone():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(10)
        b.code(20)
        b.code(5)
    prog = b.build()
    offsets = [blk.offset for blk in prog.procedures["main"].blocks]
    assert offsets == [0, 10, 30]


def test_loop_creates_header_and_latch():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l", trips=3):
            b.code(7)
    prog = b.build()
    main = prog.procedures["main"]
    stmt = main.body[0]
    assert isinstance(stmt, LoopStmt)
    assert stmt.latch_block.terminator.kind == TermKind.COND_BRANCH
    assert stmt.latch_block.terminator.target_offset == stmt.header_block.offset
    assert stmt.latch_block.offset > stmt.header_block.offset


def test_loop_nesting_is_region_nesting():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("outer", trips=2):
            with b.loop("inner", trips=2):
                b.code(4)
    prog = b.build()
    outer = prog.procedures["main"].body[0]
    inner = outer.body[0]
    assert outer.header_block.address < inner.header_block.address
    assert inner.latch_branch_address < outer.latch_branch_address


def test_call_site_has_call_terminator():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.call("f")
    with b.proc("f"):
        b.code(3)
    prog = b.build()
    stmt = prog.procedures["main"].body[0]
    assert isinstance(stmt, CallStmt)
    assert stmt.site_block.terminator.kind == TermKind.CALL


def test_if_else_structure():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.if_(0.5):
            b.code(3)
        with b.else_():
            b.code(4)
    prog = b.build()
    stmt = prog.procedures["main"].body[0]
    assert isinstance(stmt, IfStmt)
    assert len(stmt.then_body) == 1
    assert len(stmt.else_body) == 1


def test_else_without_if_rejected():
    b = ProgramBuilder("p")
    with pytest.raises(BuildError):
        with b.proc("main"):
            b.code(2)
            with b.else_():
                b.code(1)


def test_else_after_intervening_statement_rejected():
    b = ProgramBuilder("p")
    with pytest.raises(BuildError):
        with b.proc("main"):
            with b.if_(0.5):
                b.code(1)
            b.code(2)
            with b.else_():
                b.code(1)


def test_switch_case_count_checked():
    b = ProgramBuilder("p")
    with pytest.raises(BuildError):
        with b.proc("main"):
            with b.switch([0.5, 0.5]) as sw:
                with sw.case():
                    b.code(1)


def test_switch_builds():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.switch([0.7, 0.3]) as sw:
            with sw.case():
                b.code(1)
            with sw.case():
                b.code(2)
    prog = b.build()
    stmt = prog.procedures["main"].body[0]
    assert isinstance(stmt, SwitchStmt)
    assert len(stmt.cases) == 2


def test_nested_procs_rejected():
    b = ProgramBuilder("p")
    with pytest.raises(BuildError):
        with b.proc("main"):
            with b.proc("inner"):
                b.code(1)


def test_duplicate_proc_rejected():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(1)
    with pytest.raises(BuildError):
        with b.proc("main"):
            b.code(1)


def test_empty_proc_rejected():
    b = ProgramBuilder("p")
    with pytest.raises(BuildError):
        with b.proc("main"):
            pass


def test_code_outside_proc_rejected():
    b = ProgramBuilder("p")
    with pytest.raises(BuildError):
        b.code(3)


def test_source_lines_strictly_increase():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(1)
        b.code(1)
        with b.loop("l", trips=1):
            b.code(1)
    prog = b.build()
    # code blocks get strictly increasing distinct lines; latch blocks share
    # the loop statement's line (like a closing brace in debug info)
    code_lines = [
        blk.source.line
        for blk in prog.procedures["main"].blocks
        if blk.label.startswith("bb")
    ]
    assert code_lines == sorted(code_lines)
    assert len(set(code_lines)) == len(code_lines)


def test_mem_defaults_to_stack_for_memory_blocks():
    b = ProgramBuilder("p")
    with b.proc("main"):
        blk = b.code(8, loads=2)
    prog = b.build()
    assert prog.blocks[blk.block_id].mem is not None


def test_block_ids_dense_and_global():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(1)
        b.call("f")
    with b.proc("f"):
        b.code(2)
    prog = b.build()
    assert [blk.block_id for blk in prog.blocks] == list(range(len(prog.blocks)))
