"""Unit tests for the 2-bit branch predictor."""

import numpy as np

from repro.engine import Machine, record_trace
from repro.engine.events import BranchEvent
from repro.perf.branch import TwoBitPredictor, mispredicts_per_interval


class TestTwoBitPredictor:
    def test_always_taken_learns(self):
        p = TwoBitPredictor()
        results = [p.access(0x100, True) for _ in range(10)]
        assert not any(results)  # initial state predicts taken

    def test_always_not_taken_warms_up(self):
        p = TwoBitPredictor()
        results = [p.access(0x100, False) for _ in range(10)]
        assert results[0] is True  # initial weakly-taken mispredicts
        assert not any(results[2:])  # then saturates not-taken

    def test_loop_pattern_mispredicts_once_per_exit(self):
        p = TwoBitPredictor()
        mispredicts = 0
        for _ in range(10):  # 10 loop executions of 20 iterations
            for i in range(20):
                taken = i < 19
                mispredicts += p.access(0x200, taken)
        # one mispredict per loop exit (the not-taken), and at most one
        # re-learning mispredict per re-entry
        assert 10 <= mispredicts <= 21

    def test_alternating_is_bad(self):
        p = TwoBitPredictor()
        for i in range(100):
            p.access(0x300, i % 2 == 0)
        assert p.misprediction_rate > 0.4

    def test_branches_tracked_independently(self):
        p = TwoBitPredictor()
        for _ in range(10):
            p.access(0x1, True)
            p.access(0x2, False)
        assert p.access(0x1, True) is False
        assert p.access(0x2, False) is False

    def test_rate_zero_when_empty(self):
        assert TwoBitPredictor().misprediction_rate == 0.0


class TestPerInterval:
    def test_counts_attributed_to_intervals(self):
        # 4 branches alternating at one address -> mispredicts spread
        events = [BranchEvent(0x10, 0x0, i % 2 == 0) for i in range(8)]
        trace = record_trace(events)
        bounds = np.array([0, 4, 8], dtype=np.int64)
        counts = mispredicts_per_interval(trace, bounds)
        assert counts.sum() > 0
        assert len(counts) == 2

    def test_empty_partition(self):
        trace = record_trace([])
        counts = mispredicts_per_interval(trace, np.array([0], dtype=np.int64))
        assert len(counts) == 0

    def test_total_matches_flat_predictor(self, toy_program, toy_input):
        trace = record_trace(Machine(toy_program, toy_input).run())
        bounds = np.array([0, len(trace) // 2, len(trace)], dtype=np.int64)
        counts = mispredicts_per_interval(trace, bounds)
        from repro.engine.events import K_BRANCH

        p = TwoBitPredictor()
        mask = trace.kinds == K_BRANCH
        total = sum(
            p.access(int(a), bool(c))
            for a, c in zip(trace.a[mask], trace.c[mask])
        )
        assert counts.sum() == total
