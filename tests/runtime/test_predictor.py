"""Unit tests for next-phase predictors."""

import pytest

from repro.runtime.predictor import (
    LastPhasePredictor,
    MarkovPredictor,
    evaluate_predictor,
)


class TestLastPhase:
    def test_constant_sequence_perfect(self):
        report = evaluate_predictor([1] * 20, LastPhasePredictor())
        assert report.accuracy == 1.0

    def test_alternating_sequence_zero(self):
        report = evaluate_predictor([1, 2] * 10, LastPhasePredictor())
        assert report.accuracy == 0.0

    def test_empty_and_singleton(self):
        assert evaluate_predictor([], LastPhasePredictor()).predictions == 0
        assert evaluate_predictor([5], LastPhasePredictor()).predictions == 0


class TestMarkov:
    def test_alternation_learned(self):
        # 1,2,1,2,...: after warmup, order-1 Markov is perfect
        report = evaluate_predictor([1, 2] * 20, MarkovPredictor(1))
        assert report.accuracy > 0.9

    def test_period_three_cycle(self):
        report = evaluate_predictor([1, 2, 3] * 20, MarkovPredictor(1))
        assert report.accuracy > 0.9

    def test_order2_beats_order1_on_context_dependence(self):
        # sequence where the successor of 2 depends on what preceded it:
        # 1,2,3, 4,2,5, 1,2,3, 4,2,5, ...
        seq = [1, 2, 3, 4, 2, 5] * 25
        acc1 = evaluate_predictor(seq, MarkovPredictor(1)).accuracy
        acc2 = evaluate_predictor(seq, MarkovPredictor(2)).accuracy
        assert acc2 > acc1

    def test_unseen_history_falls_back(self):
        p = MarkovPredictor(1)
        p.observe(1)
        assert p.predict() == 1  # no table entry yet: predict last

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            MarkovPredictor(0)

    def test_report_name_default(self):
        report = evaluate_predictor([1, 1], MarkovPredictor(1))
        assert report.name == "MarkovPredictor"

    def test_accuracy_zero_when_no_predictions(self):
        assert evaluate_predictor([], MarkovPredictor(1)).accuracy == 0.0
