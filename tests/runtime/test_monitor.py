"""Unit tests for the online phase monitor."""

import pytest

from repro.callloop import SelectionParams, build_call_loop_graph, select_markers
from repro.engine import Machine
from repro.intervals import split_at_markers
from repro.engine.tracing import record_trace
from repro.runtime import PhaseMonitor, monitor_run


@pytest.fixture
def toy_markers(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    return select_markers(graph, SelectionParams(ilower=500)).markers


def test_callback_invoked_per_change(toy_program, toy_input, toy_markers):
    seen = []
    monitor_run(toy_program, toy_input, toy_markers, on_change=seen.append)
    assert seen
    assert all(c.new_phase != c.previous_phase for c in seen)


def test_changes_match_offline_vli(toy_program, toy_input, toy_markers):
    """Online monitoring and offline VLI splitting see the same phases."""
    monitor = monitor_run(toy_program, toy_input, toy_markers)
    trace = record_trace(Machine(toy_program, toy_input).run())
    intervals = split_at_markers(toy_program, trace, toy_markers)
    online_phases = [c.new_phase for c in monitor.changes]
    offline_phases = [
        int(p) for p in intervals.phase_ids if p != 0
    ]
    # offline collapses coincident firings; online reports each distinct
    # phase change — the offline sequence must be a subsequence of online
    it = iter(online_phases)
    assert all(p in it for p in offline_phases) or online_phases == offline_phases


def test_time_accounting_sums_to_total(toy_program, toy_input, toy_markers):
    monitor = PhaseMonitor(toy_program, toy_markers)
    total = monitor.run(Machine(toy_program, toy_input).run())
    assert sum(monitor.time_in_phase.values()) == total


def test_min_interval_suppresses_bursts(toy_program, toy_input, toy_markers):
    eager = monitor_run(toy_program, toy_input, toy_markers, min_interval=0)
    lazy = monitor_run(toy_program, toy_input, toy_markers, min_interval=2000)
    assert len(lazy.changes) <= len(eager.changes)
    assert all(c.time_in_previous >= 2000 for c in lazy.changes)


def test_hysteresis_does_not_rewind_merged_cadence(
    toy_program, toy_input, toy_markers
):
    """min_interval suppression must not reset every-Nth counters: each
    reported change still lands on a raw tracker firing point."""
    import dataclasses

    from repro.callloop.graph import NodeKind, NodeTable
    from repro.callloop.markers import MarkerSet, MarkerTracker
    from repro.callloop.walker import ContextHandler, ContextWalker

    loop_marker = next(
        m
        for m in toy_markers
        if m.src.kind == NodeKind.LOOP_HEAD and m.dst.kind == NodeKind.LOOP_BODY
    )
    other = next(m for m in toy_markers if m.edge_key != loop_marker.edge_key)
    markers = MarkerSet(
        toy_program.name, toy_program.variant, 500.0, None,
        [
            dataclasses.replace(loop_marker, marker_id=1, merge_iterations=5),
            dataclasses.replace(other, marker_id=2, merge_iterations=1),
        ],
    )

    class _FiringLog(ContextHandler):
        def __init__(self):
            self.table = NodeTable(toy_program)
            self.tracker = MarkerTracker(markers, self.table)
            self.fired = []

        def on_edge_open(self, src, dst, t, source):
            marker = self.tracker.edge_opened(src, dst)
            if marker is not None:
                self.fired.append((marker.marker_id, t))

    raw = _FiringLog()
    trace = record_trace(Machine(toy_program, toy_input))
    ContextWalker(toy_program, raw.table).walk_events(trace.replay(), raw)

    eager = monitor_run(toy_program, toy_input, markers, min_interval=0)
    lazy = monitor_run(toy_program, toy_input, markers, min_interval=3000)
    assert len(eager.changes) > 2
    raw_points = set(raw.fired)
    assert all((c.marker.marker_id, c.t) in raw_points for c in eager.changes)
    assert all((c.marker.marker_id, c.t) in raw_points for c in lazy.changes)
    assert len(lazy.changes) < len(eager.changes)
    assert all(c.time_in_previous >= 3000 for c in lazy.changes)


def test_phase_sequence_starts_at_zero(toy_program, toy_input, toy_markers):
    monitor = monitor_run(toy_program, toy_input, toy_markers)
    seq = monitor.phase_sequence
    assert seq[0] == 0
    assert len(seq) == len(monitor.changes) + 1


def test_same_phase_refire_not_reported(toy_program, toy_input, toy_markers):
    monitor = monitor_run(toy_program, toy_input, toy_markers)
    for change in monitor.changes:
        assert change.new_phase != change.previous_phase


def test_callback_exception_propagates(toy_program, toy_input, toy_markers):
    def boom(change):
        raise RuntimeError("controller failed")

    with pytest.raises(RuntimeError, match="controller failed"):
        monitor_run(toy_program, toy_input, toy_markers, on_change=boom)


def test_dwell_records_cover_total_time(toy_program, toy_input, toy_markers):
    """Every instruction lands in exactly one dwell record."""
    monitor = PhaseMonitor(toy_program, toy_markers)
    total = monitor.run(Machine(toy_program, toy_input).run())
    assert sum(dwell for _, dwell in monitor.dwells) == total
    # one dwell per completed stay: every change plus the final phase
    assert len(monitor.dwells) == len(monitor.changes) + 1


def test_dwell_histograms_per_phase(toy_program, toy_input, toy_markers):
    monitor = monitor_run(toy_program, toy_input, toy_markers)
    hists = monitor.dwell_histograms()
    assert set(hists) == {phase for phase, _ in monitor.dwells}
    assert sum(h.total for h in hists.values()) == len(monitor.dwells)
    # histogram totals agree with the per-phase time accounting
    for phase, hist in hists.items():
        dwells = [d for p, d in monitor.dwells if p == phase]
        assert hist.total == len(dwells)


def test_dwell_table_renders(toy_program, toy_input, toy_markers):
    monitor = monitor_run(toy_program, toy_input, toy_markers)
    text = monitor.dwell_table().render()
    assert "Per-phase dwell-time histogram" in text
    assert "dwell bucket" in text
    # buckets are power-of-two instruction ranges
    assert "[" in text and ")" in text


# -- run() lifecycle ----------------------------------------------------------


def test_rerun_matches_fresh_monitor(toy_program, toy_input, toy_markers):
    """A second run() starts from a clean slate (regression: stale
    current_phase/phase_start_t/dwells double-counted dwell accounting
    and phase changes on monitor reuse)."""
    monitor = PhaseMonitor(toy_program, toy_markers)
    monitor.run(Machine(toy_program, toy_input).run())
    first = (
        list(monitor.changes),
        list(monitor.dwells),
        dict(monitor.time_in_phase),
    )
    total = monitor.run(Machine(toy_program, toy_input).run())
    assert (
        list(monitor.changes),
        list(monitor.dwells),
        dict(monitor.time_in_phase),
    ) == first
    assert sum(monitor.time_in_phase.values()) == total
    fresh = monitor_run(toy_program, toy_input, toy_markers)
    assert monitor.changes == fresh.changes
    assert monitor.dwells == fresh.dwells


def test_midstream_exception_closes_accounting(
    toy_program, toy_input, toy_markers
):
    """A stream that dies mid-walk still gets its final dwell closed at
    the last observed instruction count, and the monitor stays reusable."""
    events = list(Machine(toy_program, toy_input).run())

    def truncated():
        for ev in events[: len(events) // 2]:
            yield ev
        raise IOError("stream lost")

    monitor = PhaseMonitor(toy_program, toy_markers)
    with pytest.raises(IOError, match="stream lost"):
        monitor.run(truncated())
    # accounting is closed: one dwell per stay, totals consistent
    assert len(monitor.dwells) == len(monitor.changes) + 1
    assert sum(d for _, d in monitor.dwells) == sum(
        monitor.time_in_phase.values()
    )
    # reuse after the failure behaves like a fresh monitor
    total = monitor.run(iter(events))
    fresh = monitor_run(toy_program, toy_input, toy_markers)
    assert monitor.changes == fresh.changes
    assert monitor.dwells == fresh.dwells
    assert sum(monitor.time_in_phase.values()) == total


# -- phase-timeline export ----------------------------------------------------


def test_phase_timeline_exported_to_telemetry(
    toy_program, toy_input, toy_markers
):
    from repro.telemetry import telemetry_session

    with telemetry_session() as tm:
        monitor = monitor_run(toy_program, toy_input, toy_markers)

    instants = [i for i in tm.instants if i.name == "phase_change"]
    assert len(instants) == len(monitor.changes)
    for inst, change in zip(instants, monitor.changes):
        assert inst.attrs["previous_phase"] == change.previous_phase
        assert inst.attrs["new_phase"] == change.new_phase
        assert inst.attrs["t"] == change.t
        assert tm.lane_labels[inst.tid] == f"phase {change.new_phase}"

    dwells = [s for s in tm.spans if s.name == "phase.dwell"]
    # one dwell span per completed stay, including the final close-out
    assert len(dwells) == len(monitor.dwells)
    for span, (phase, dwell) in zip(dwells, monitor.dwells):
        assert span.attrs["phase"] == phase
        assert span.attrs["instructions"] == dwell
        assert tm.lane_labels[span.tid] == f"phase {phase}"
    # dwell spans parent inside the runtime.monitor stage subtree
    assert all(s.parent_id is not None for s in dwells)
    assert all(s.path.startswith("runtime.monitor/") for s in dwells)
    # dwell tracks tile the monitored run: wall-clock ordered, adjacent
    times = [(s.start_us, s.start_us + s.duration_us) for s in dwells]
    for (_, prev_end), (start, _) in zip(times, times[1:]):
        assert start == pytest.approx(prev_end, abs=1e3)


def test_phase_timeline_absent_when_telemetry_off(
    toy_program, toy_input, toy_markers
):
    monitor = monitor_run(toy_program, toy_input, toy_markers)
    assert monitor._tm is None  # never retained outside run()
