"""Tests for the picklable profile-job entry point.

The job contract: pure, self-contained, identical results to in-process
profiling — and a *clear* error (not a pickle traceback) when a job
cannot cross the process boundary.
"""

import json

import pytest

from repro.callloop.serialization import graph_to_dict
from repro.experiments.runner import Runner
from repro.ir.program import ProgramInput
from repro.runner import (
    ProfileJob,
    UnpicklableJobError,
    ensure_picklable,
    run_profile_job,
    run_profile_jobs,
)
from repro.workloads import get_workload
from repro.workloads.base import Workload
from tests.conftest import build_toy_program

SPEC = "vortex/one"


def adhoc_workload() -> Workload:
    """A workload whose builder is a lambda — unpicklable by design."""
    return Workload(
        name="adhoc",
        category="int",
        description="test-only workload",
        builder=lambda: build_toy_program(),
        inputs={
            "train": ProgramInput("train", seed=1),
            "ref": ProgramInput("ref", seed=2),
        },
    )


def test_job_result_matches_serial_profiling():
    result = run_profile_job(ProfileJob(SPEC, "ref"))
    serial = Runner().graph(SPEC, "ref")
    assert json.dumps(result.graph_data, sort_keys=True) == json.dumps(
        graph_to_dict(serial), sort_keys=True
    )
    assert result.spec == SPEC
    assert result.which == "ref"
    assert result.seconds > 0


def test_job_resolves_named_input():
    workload = get_workload("gzip")
    job = ProfileJob("gzip", "graphic")
    assert job.resolve_input(workload) is workload.inputs["graphic"]
    assert ProfileJob("gzip", "train").resolve_input(workload) is workload.train_input
    assert ProfileJob("gzip", "ref").resolve_input(workload) is workload.ref_input


def test_unknown_spec_fails_with_registry_error():
    with pytest.raises(KeyError, match="unknown workload"):
        run_profile_job(ProfileJob("nonesuch", "ref"))


def test_unpicklable_job_raises_clear_error():
    job = ProfileJob("adhoc", "ref", workload=adhoc_workload())
    with pytest.raises(UnpicklableJobError) as excinfo:
        ensure_picklable(job)
    message = str(excinfo.value)
    assert "adhoc" in message
    assert "worker process" in message
    assert "jobs=1" in message  # the error tells the user the fix


def test_parallel_submission_rejects_unpicklable_job_up_front():
    jobs = [ProfileJob("adhoc", "ref", workload=adhoc_workload()), ProfileJob(SPEC)]
    with pytest.raises(UnpicklableJobError, match="adhoc"):
        run_profile_jobs(jobs, max_workers=2)


def test_unpicklable_workload_still_runs_inline():
    """Serial execution never pickles, so ad-hoc workloads are fine."""
    result = run_profile_job(ProfileJob("adhoc", "ref", workload=adhoc_workload()))
    assert result.graph_data["program_name"] == "toy"
    assert result.graph_data["edges"]
    # and the jobs=1 path of the fan-out API takes the same inline route
    results = run_profile_jobs(
        [ProfileJob("adhoc", "ref", workload=adhoc_workload())], max_workers=1
    )
    assert results[0].graph_data == result.graph_data
