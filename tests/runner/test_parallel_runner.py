"""Integration tests: Runner + prefetch + cache, parallel vs serial.

The headline guarantees: a parallel run produces results identical to a
serial run, and a warm-cache re-run of a figure experiment skips
profiling entirely (observable through the run-summary counters).
"""

import json

from repro.callloop.serialization import graph_to_dict
from repro.experiments import fig3
from repro.experiments.runner import Runner
from repro.runner import ProfileCache

SPECS = [("vortex/one", "ref"), ("tomcatv/ref", "ref")]


def graph_doc(graph) -> str:
    return json.dumps(graph_to_dict(graph), sort_keys=True)


def test_parallel_prefetch_equals_serial_graphs():
    serial = Runner()
    serial_docs = {pair: graph_doc(serial.graph(*pair)) for pair in SPECS}

    parallel = Runner(jobs=2)
    profiled = parallel.prefetch_graphs(SPECS)
    assert profiled == len(SPECS)
    for pair in SPECS:
        assert graph_doc(parallel.graph(*pair)) == serial_docs[pair]
    assert {e.source for e in parallel.log.events} == {"worker"}


def test_prefetch_skips_memoized_and_cached(tmp_path):
    runner = Runner(cache=ProfileCache(tmp_path))
    runner.graph(*SPECS[0])
    assert runner.prefetch_graphs([SPECS[0]]) == 0  # memoized in-process

    fresh = Runner(cache=ProfileCache(tmp_path))
    assert fresh.prefetch_graphs([SPECS[0]]) == 0  # served from disk
    assert fresh.cache.hits == 1
    assert fresh.log.events[0].source == "cache"


def test_prefetch_deduplicates_pairs():
    runner = Runner()
    assert runner.prefetch_graphs([SPECS[0], SPECS[0]], jobs=1) == 1


def test_warm_cache_figure_experiment_skips_profiling(tmp_path):
    """The acceptance check: a warm re-run of fig3 is all cache hits."""
    cold = Runner(cache=ProfileCache(tmp_path))
    cold_table = fig3.run(cold).render()
    assert not cold.log.profiling_skipped()
    assert cold.cache.stores >= 1

    warm = Runner(cache=ProfileCache(tmp_path))
    warm_table = fig3.run(warm).render()
    assert warm_table == cold_table  # byte-identical figure output
    assert warm.log.profiling_skipped()  # zero profiler passes
    assert warm.cache.hits >= 1
    assert warm.cache.misses == 0

    summary = warm.run_summary().render()
    assert "cache" in summary
    assert "0 misses" in summary


def test_run_summary_lists_every_acquisition():
    runner = Runner()
    runner.prefetch_graphs(SPECS, jobs=1)
    table = runner.run_summary()
    rendered = table.render()
    assert "vortex" in rendered
    assert "tomcatv" in rendered
    assert f"total ({len(SPECS)})" in rendered
    assert runner.log.cache_misses == len(SPECS)
    assert runner.log.profile_seconds > 0
