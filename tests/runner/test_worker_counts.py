"""Worker-count selection: affinity-aware defaults, explicit overrides."""

import os

from repro.runner.parallel import available_cpus, default_jobs


def test_available_cpus_prefers_process_cpu_count(monkeypatch):
    monkeypatch.setattr(os, "process_cpu_count", lambda: 3, raising=False)
    assert available_cpus() == 3


def test_available_cpus_uses_affinity_mask(monkeypatch):
    """A scheduler-restricted affinity mask beats the machine CPU count."""
    monkeypatch.delattr(os, "process_cpu_count", raising=False)
    monkeypatch.setattr(
        os, "sched_getaffinity", lambda pid: {0, 5}, raising=False
    )
    assert available_cpus() == 2
    assert default_jobs() == 2


def test_available_cpus_falls_back_to_cpu_count(monkeypatch):
    monkeypatch.delattr(os, "process_cpu_count", raising=False)
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 7)
    assert available_cpus() == 7
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert available_cpus() == 1


def test_explicit_max_workers_not_clamped(monkeypatch):
    """Only the default is affinity-aware; an explicit worker count is
    honored even when it exceeds the available CPUs."""
    from repro.experiments.runner import Runner

    monkeypatch.setattr(
        os, "sched_getaffinity", lambda pid: {0}, raising=False
    )
    runner = Runner(jobs=2)
    profiled = runner.prefetch_graphs([("vortex/one", "ref"), ("tomcatv/ref", "ref")])
    assert profiled == 2
    assert {e.source for e in runner.log.events} == {"worker"}
