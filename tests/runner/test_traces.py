"""Unit tests for the spilled-trace store and shared-memory handoff."""

import pickle

import numpy as np
import pytest

from repro.engine import Machine, record_trace
from repro.runner.traces import (
    TRACE_SPILL_ROWS,
    TraceHandle,
    TraceStore,
    default_trace_dir,
)


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "traces")


@pytest.fixture
def toy_trace(toy_program, toy_input):
    return record_trace(Machine(toy_program, toy_input))


def test_store_load_roundtrip(store, toy_trace, toy_input):
    key = store.trace_key("toy", "ref", toy_input)
    handle = store.store(key, toy_trace)
    loaded = store.load(key)
    assert loaded is not None
    for name in ("kinds", "a", "b", "c"):
        assert np.array_equal(getattr(loaded, name), getattr(toy_trace, name))
    # mmap mode: columns come back as memory maps sharing the page cache
    assert isinstance(loaded.kinds, np.memmap)
    assert handle.rows == len(toy_trace)


def test_handle_load(store, toy_trace, toy_input):
    key = store.trace_key("toy", "ref", toy_input)
    handle = store.store(key, toy_trace)
    loaded = handle.load()
    assert np.array_equal(loaded.kinds, toy_trace.kinds)
    materialized = handle.load(mmap=False)
    assert not isinstance(materialized.kinds, np.memmap)
    assert np.array_equal(materialized.c, toy_trace.c)


def test_handle_is_picklable(store, toy_trace, toy_input):
    key = store.trace_key("toy", "ref", toy_input)
    handle = store.store(key, toy_trace)
    clone = pickle.loads(pickle.dumps(handle))
    assert clone == handle
    assert len(pickle.dumps(handle)) < 500  # a path record, not the trace
    assert np.array_equal(clone.load().a, toy_trace.a)


def test_missing_key_is_a_miss(store):
    assert store.load("0" * 64) is None


def test_corrupt_entry_is_a_miss(store, toy_trace, toy_input):
    key = store.trace_key("toy", "ref", toy_input)
    store.store(key, toy_trace)
    (store.path_for(key) / "a.npy").write_bytes(b"not a npy file")
    assert store.load(key) is None
    assert not store.path_for(key).exists()  # removed for re-recording


def test_store_is_idempotent(store, toy_trace, toy_input):
    key = store.trace_key("toy", "ref", toy_input)
    h1 = store.store(key, toy_trace)
    h2 = store.store(key, toy_trace)
    assert h1 == h2
    assert store.spills == 1  # second store reused the existing entry


def test_keys_distinguish_inputs(store, toy_input):
    from repro.ir.program import ProgramInput

    other = ProgramInput("test", {}, seed=toy_input.seed + 1)
    assert store.trace_key("toy", "ref", toy_input) != store.trace_key(
        "toy", "ref", other
    )
    assert store.trace_key("toy", "ref", toy_input) != store.trace_key(
        "toy", "train", toy_input
    )
    assert store.trace_key("toy", "ref", toy_input) == store.trace_key(
        "toy", "ref", toy_input
    )


def test_clear(store, toy_trace, toy_input):
    key = store.trace_key("toy", "ref", toy_input)
    store.store(key, toy_trace)
    assert store.clear() == 1
    assert store.load(key) is None


def test_handle_row_mismatch_rejected(store, toy_trace, toy_input):
    key = store.trace_key("toy", "ref", toy_input)
    handle = store.store(key, toy_trace)
    bad = TraceHandle(handle.path, handle.rows + 1)
    with pytest.raises(ValueError):
        bad.load()


def test_default_trace_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "custom"))
    assert default_trace_dir() == tmp_path / "custom"


def test_profile_job_handoff(tmp_path):
    """A job with a trace_root spills its recording and hands back a
    loadable handle instead of pickling the trace."""
    from repro.runner.jobs import ProfileJob, run_profile_job

    job = ProfileJob("mcf", "train", trace_root=str(tmp_path / "traces"))
    result = run_profile_job(job)
    assert result.trace_handle is not None
    trace = result.trace_handle.load()
    assert len(trace) == result.trace_handle.rows
    # a second run of the same job hits the spilled entry
    result2 = run_profile_job(job)
    assert result2.trace_handle.path == result.trace_handle.path
    assert result2.graph_data == result.graph_data


def test_spill_threshold_constant():
    # the runner spills at a bound that keeps small traces in memory
    assert TRACE_SPILL_ROWS >= 1 << 12
