"""Tests for the content-addressed profile cache.

Covers the ISSUE's cache contract: miss-then-store on a cold run, exact
hits on a warm run, key invalidation when any configuration input
changes, and graceful fallback to re-profiling when an entry is
corrupted on disk.
"""

import json

from repro.callloop.serialization import graph_to_dict
from repro.experiments.runner import Runner
from repro.ir.program import ProgramInput
from repro.runner import ProfileCache
from repro.runner import cache as cache_module

SPEC = "vortex/one"


def graph_doc(graph) -> str:
    return json.dumps(graph_to_dict(graph), sort_keys=True)


def test_cold_run_misses_and_stores(tmp_path):
    cache = ProfileCache(tmp_path)
    runner = Runner(cache=cache)
    graph = runner.graph(SPEC)
    assert cache.misses == 1
    assert cache.hits == 0
    assert cache.stores == 1
    key = cache.graph_key(SPEC, "ref", runner.input_for(SPEC, "ref"))
    assert cache.path_for(key).exists()
    assert runner.log.events[0].source == "profiled"
    assert graph.total_instructions > 0


def test_warm_run_hits_with_identical_graph(tmp_path):
    cold = Runner(cache=ProfileCache(tmp_path))
    original = cold.graph(SPEC)

    warm_cache = ProfileCache(tmp_path)
    warm = Runner(cache=warm_cache)
    loaded = warm.graph(SPEC)
    assert warm_cache.hits == 1
    assert warm_cache.misses == 0
    assert graph_doc(loaded) == graph_doc(original)
    assert warm.log.events[0].source == "cache"
    assert warm.log.profiling_skipped()


def test_memoized_graph_not_reloaded(tmp_path):
    cache = ProfileCache(tmp_path)
    runner = Runner(cache=cache)
    assert runner.graph(SPEC) is runner.graph(SPEC)
    assert cache.misses == 1  # second call is in-process memoization


def test_key_is_deterministic_and_config_sensitive(tmp_path):
    cache = ProfileCache(tmp_path)
    base = ProgramInput("one", {"scale": 2.0}, seed=7)
    key = cache.graph_key("vortex", "ref", base)
    assert key == cache.graph_key("vortex", "ref", base)
    # every fingerprint field invalidates the key
    assert key != cache.graph_key("vortex/one", "ref", base)  # variant label
    assert key != cache.graph_key("gzip", "ref", base)
    assert key != cache.graph_key("vortex", "train", base)
    assert key != cache.graph_key("vortex", "ref", base.with_seed(8))
    assert key != cache.graph_key(
        "vortex", "ref", ProgramInput("one", {"scale": 3.0}, seed=7)
    )
    assert key != cache.graph_key(
        "vortex", "ref", base, extra={"max_instructions": 100}
    )


def test_key_distinguishes_workload_variants(tmp_path):
    """``name/input`` spec labels must not collapse onto the bare name
    (the old key truncated at the first ``/``, aliasing every variant)."""
    cache = ProfileCache(tmp_path)
    base = ProgramInput("one", seed=7)
    keys = {
        cache.graph_key(spec, "ref", base)
        for spec in ("vortex", "vortex/one", "vortex/two", "vortex/one/extra")
    }
    assert len(keys) == 4


def test_key_preserves_param_types(tmp_path):
    """1, 1.0, True and "1" are different configurations, not one key
    (the old key coerced every value through float())."""
    cache = ProfileCache(tmp_path)
    keys = {
        cache.graph_key(
            "vortex", "ref", ProgramInput("one", {"scale": v}, seed=7)
        )
        for v in (1, 1.0, True, "1", "true")
    }
    assert len(keys) == 5


def test_key_accepts_non_numeric_params(tmp_path):
    """String/list/None parameter values must hash, not raise."""
    cache = ProfileCache(tmp_path)
    params = {"mode": "fast", "stages": [1, 2], "limit": None}
    base = ProgramInput("one", params, seed=7)
    key = cache.graph_key("vortex", "ref", base)
    assert key == cache.graph_key("vortex", "ref", base)
    assert key != cache.graph_key(
        "vortex", "ref", ProgramInput("one", {**params, "mode": "slow"}, seed=7)
    )


def test_code_version_change_invalidates(tmp_path, monkeypatch):
    cache = ProfileCache(tmp_path)
    program_input = ProgramInput("one", seed=7)
    before = cache.graph_key("vortex", "ref", program_input)
    monkeypatch.setattr(cache_module, "CACHE_SCHEMA_VERSION", 999)
    assert cache.graph_key("vortex", "ref", program_input) != before


def test_corrupted_entry_falls_back_to_reprofile(tmp_path):
    cold = Runner(cache=ProfileCache(tmp_path))
    original = cold.graph(SPEC)

    cache = ProfileCache(tmp_path)
    key = cache.graph_key(SPEC, "ref", cold.input_for(SPEC, "ref"))
    cache.path_for(key).write_text("{ this is not json")

    runner = Runner(cache=cache)
    graph = runner.graph(SPEC)
    assert cache.invalid == 1
    assert cache.hits == 0
    assert cache.misses == 1
    assert runner.log.events[0].source == "profiled"
    assert graph_doc(graph) == graph_doc(original)
    # the bad file was replaced by the fresh profile
    assert cache.stores == 1
    assert cache.path_for(key).exists()
    assert ProfileCache(tmp_path).load_graph(key) is not None


def test_stale_format_version_treated_as_miss(tmp_path):
    cold = Runner(cache=ProfileCache(tmp_path))
    cold.graph(SPEC)

    cache = ProfileCache(tmp_path)
    key = cache.graph_key(SPEC, "ref", cold.input_for(SPEC, "ref"))
    doc = json.loads(cache.path_for(key).read_text())
    doc["graph"]["graph_format_version"] = 99
    cache.path_for(key).write_text(json.dumps(doc))
    assert cache.load_graph(key) is None
    assert cache.invalid == 1
    assert not cache.path_for(key).exists()


def test_missing_entry_is_a_plain_miss(tmp_path):
    cache = ProfileCache(tmp_path)
    assert cache.load_graph("0" * 64) is None
    assert cache.misses == 1
    assert cache.invalid == 0


def test_clear_removes_entries(tmp_path):
    runner = Runner(cache=ProfileCache(tmp_path))
    runner.graph(SPEC)
    cache = ProfileCache(tmp_path)
    assert cache.clear() == 1
    assert cache.clear() == 0


def test_clear_sweeps_orphaned_tmp_files(tmp_path):
    """A crashed writer leaves ``.tmp`` droppings next to the entries;
    ``clear()`` must remove them and count them accurately."""
    runner = Runner(cache=ProfileCache(tmp_path))
    runner.graph(SPEC)
    cache = ProfileCache(tmp_path)
    key = cache.graph_key(SPEC, "ref", runner.input_for(SPEC, "ref"))
    shard = cache.path_for(key).parent
    (shard / "crashed-write-1.tmp").write_text("{ partial")
    (shard / "crashed-write-2.tmp").write_text("")
    assert cache.clear() == 3  # 1 entry + 2 orphans
    assert list(tmp_path.glob("*/*")) == []
    assert cache.clear() == 0
