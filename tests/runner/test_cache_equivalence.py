"""Cache-hit runs must be indistinguishable from cache-miss runs.

The profile cache stores *serialized* graphs; because the JSON round-trip
is exact and edge order is preserved, everything downstream of a cached
graph — marker selection, phase counts, rendered experiment output —
must be byte-identical to a fresh profiling pass.  These tests pin that
guarantee for three workloads and for the CLI's stdout with telemetry
off.
"""

import json

import pytest

from repro.callloop.serialization import graph_to_dict, marker_set_to_dict
from repro.experiments.runner import Runner
from repro.runner import ProfileCache

WORKLOADS = ["gzip/graphic", "vortex/one", "mcf/inp"]


def _doc(obj) -> str:
    return json.dumps(obj, sort_keys=True)


@pytest.mark.parametrize("spec", WORKLOADS)
def test_cached_graph_byte_identical_to_fresh(tmp_path, spec):
    cold = Runner(cache=ProfileCache(tmp_path))
    cold_doc = _doc(graph_to_dict(cold.graph(spec, "ref")))
    assert cold.cache.misses >= 1 and cold.cache.hits == 0

    warm = Runner(cache=ProfileCache(tmp_path))
    warm_doc = _doc(graph_to_dict(warm.graph(spec, "ref")))
    assert warm.cache.hits == 1 and warm.cache.misses == 0
    assert warm_doc == cold_doc


@pytest.mark.parametrize("spec", WORKLOADS)
def test_cached_marker_selection_byte_identical(tmp_path, spec):
    """Selection over a cache-hit graph: same marker dicts, same
    human-readable description, for every marker variant in play."""
    cold = Runner(cache=ProfileCache(tmp_path))
    variants = ("nolimit-self", "nolimit-cross", "limit")
    cold_markers = {v: cold.markers(spec, v) for v in variants}

    warm = Runner(cache=ProfileCache(tmp_path))
    for variant in variants:
        got = warm.markers(spec, variant)
        want = cold_markers[variant]
        assert _doc(marker_set_to_dict(got)) == _doc(marker_set_to_dict(want))
        assert got.describe() == want.describe()
    assert warm.cache.hits >= 1
    assert warm.cache.misses == 0


def test_cached_experiment_stdout_byte_identical(tmp_path, capsys):
    """The CLI guarantee with telemetry off: a warm-cache `repro
    experiment` re-run writes byte-identical stdout (observability is
    stderr-only)."""
    from repro.cli import main

    args = ["experiment", "fig3", "--cache-dir", str(tmp_path)]
    assert main(args) == 0
    cold = capsys.readouterr()

    assert main(args) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out
    assert "0 misses" in warm.err


def test_corrupted_cache_entry_recovers_with_identical_output(tmp_path):
    """A damaged cache file must be discarded and re-profiled, not change
    the result."""
    spec = WORKLOADS[0]
    cold = Runner(cache=ProfileCache(tmp_path))
    cold_doc = _doc(graph_to_dict(cold.graph(spec, "ref")))

    for entry in tmp_path.rglob("*.json"):
        entry.write_text(entry.read_text()[:50])  # truncate -> invalid JSON

    recovered = Runner(cache=ProfileCache(tmp_path))
    assert _doc(graph_to_dict(recovered.graph(spec, "ref"))) == cold_doc
