"""The RunLog deprecation shim: same API/output, telemetry underneath."""

import pytest

from repro.runner.summary import CACHE_HIT, PROFILED, WORKER, RunLog
from repro.telemetry import install_telemetry, telemetry_session


@pytest.fixture(autouse=True)
def _no_global_session():
    prev = install_telemetry(None)
    yield
    install_telemetry(prev)


@pytest.fixture
def log():
    rl = RunLog()
    rl.record("gzip", "ref", PROFILED, 1.25)
    rl.record("gcc", "166", CACHE_HIT, 0.002)
    rl.record("vortex", "ref", WORKER, 0.75)
    return rl


def test_events_property_compat(log):
    events = log.events
    assert [e.spec for e in events] == ["gzip", "gcc", "vortex"]
    assert events[0].source == PROFILED
    assert events[0].seconds == pytest.approx(1.25)
    assert events[1].which == "166"


def test_counters_compat(log):
    assert log.cache_hits == 1
    assert log.cache_misses == 2  # profiled + worker
    assert log.profile_seconds == pytest.approx(2.002)
    assert not log.profiling_skipped()


def test_profiling_skipped_all_cache():
    log = RunLog()
    log.record("gzip", "ref", CACHE_HIT, 0.001)
    assert log.profiling_skipped()
    assert not RunLog().profiling_skipped()  # empty log: nothing skipped


def test_summary_table_format_stable(log):
    """The exact pre-shim table layout: title, columns, totals row."""
    text = log.summary_table().render()
    lines = text.splitlines()
    assert lines[0] == "Run summary: call-loop profile acquisitions"
    assert lines[2].split() == ["workload", "input", "source", "seconds"]
    assert "gzip" in text and "profiled" in text and "1.250" in text
    assert "total (3)" in text
    assert "1 cache hits / 2 misses" in text
    assert "2.002" in text


def test_summary_table_cache_stats():
    class FakeCache:
        stores = 2
        invalid = 1

    log = RunLog()
    log.record("gzip", "ref", PROFILED, 0.5)
    text = log.summary_table(cache=FakeCache()).render()
    assert "2 stored" in text
    assert "1 corrupt discarded" in text


def test_records_render_with_global_telemetry_disabled(log):
    """Summaries must not depend on the global --telemetry switch."""
    assert "gzip" in log.summary_table().render()


def test_records_forward_to_active_session():
    with telemetry_session() as tm:
        log = RunLog()
        log.record("gzip", "ref", PROFILED, 1.0)
    spans = [s for s in tm.spans if s.name == "runner.acquire"]
    assert len(spans) == 1
    assert spans[0].attrs == {"spec": "gzip", "which": "ref", "source": PROFILED}
    assert spans[0].seconds == pytest.approx(1.0)
    assert tm.metrics.counters["runner.acquire.profiled"] == 1
    assert tm.metrics.counters["runner.acquire.seconds"] == pytest.approx(1.0)
    # the log's own accounting is unchanged by forwarding
    assert log.cache_misses == 1
