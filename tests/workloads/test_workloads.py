"""Unit tests for the synthetic workload suite."""

import numpy as np
import pytest

from repro.engine import Machine, record_trace
from repro.ir.validate import validate_program
from repro.workloads import (
    CACHE_EVALUATION_SET,
    SPEC_EVALUATION_SET,
    all_workloads,
    get_workload,
    workload_names,
)
from repro.workloads.base import Workload, register


def test_registry_complete():
    names = workload_names()
    assert len(names) == 16
    for spec in SPEC_EVALUATION_SET + CACHE_EVALUATION_SET:
        wl = get_workload(spec)
        assert wl.spec_name == spec or spec.startswith(wl.name)


def test_evaluation_sets_match_paper():
    assert len(SPEC_EVALUATION_SET) == 11  # Figures 7-9, 11-12
    assert len(CACHE_EVALUATION_SET) == 5  # Figure 10 (Shen's set)


@pytest.mark.parametrize("name", [w.name for w in all_workloads()])
def test_builds_and_validates(name):
    wl = get_workload(name)
    prog = wl.build()
    validate_program(prog)
    assert prog.name == name


@pytest.mark.parametrize("name", [w.name for w in all_workloads()])
def test_has_train_and_ref(name):
    wl = get_workload(name)
    assert "train" in wl.inputs
    assert wl.ref_input.name == wl.ref_name
    assert wl.train_input.seed != wl.ref_input.seed


def test_categories():
    cats = {w.name: w.category for w in all_workloads()}
    assert cats["gcc"] == "int"
    assert cats["swim"] == "fp"
    assert set(cats.values()) == {"int", "fp"}


@pytest.mark.parametrize("name", ["gzip", "swim", "gcc"])
def test_ref_larger_than_train(name):
    wl = get_workload(name)
    prog = wl.build()
    ref = record_trace(
        Machine(prog, wl.ref_input, max_instructions=5_000_000).run()
    ).total_instructions
    train = record_trace(
        Machine(prog, wl.train_input, max_instructions=5_000_000).run()
    ).total_instructions
    assert ref > 1.5 * train


def test_deterministic_execution():
    wl = get_workload("tomcatv")
    prog = wl.build()
    a = record_trace(Machine(prog, wl.ref_input).run())
    b = record_trace(Machine(prog, wl.ref_input).run())
    assert a.total_instructions == b.total_instructions
    assert np.array_equal(a.a, b.a)


def test_unknown_workload():
    with pytest.raises(KeyError):
        get_workload("doom")


def test_duplicate_registration_rejected():
    wl = get_workload("gzip")
    with pytest.raises(ValueError):
        register(
            Workload(
                name="gzip",
                category="int",
                description="dup",
                builder=wl.builder,
                inputs=wl.inputs,
                ref_name=wl.ref_name,
            )
        )


def test_spec_label_lookup():
    assert get_workload("gzip/graphic").name == "gzip"
    assert get_workload("gcc/166").name == "gcc"


@pytest.mark.parametrize("name", ["gzip", "swim"])
def test_markers_transfer_across_inputs(name):
    """Cross-input sanity: train-selected markers fire on ref."""
    from repro.callloop import (
        SelectionParams,
        build_call_loop_graph,
        marker_trace,
        select_markers,
    )

    wl = get_workload(name)
    prog = wl.build()
    graph = build_call_loop_graph(prog, [wl.train_input])
    markers = select_markers(graph, SelectionParams(ilower=10_000)).markers
    assert markers
    firings = marker_trace(prog, wl.ref_input, markers)
    assert len(firings) >= len(markers)
