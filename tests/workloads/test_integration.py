"""Per-workload integration: the full pipeline on every benchmark.

Executions are capped so the whole matrix stays fast; the claims checked
are the structural ones every workload must satisfy for the paper's
experiments to be meaningful.
"""

import numpy as np
import pytest

from repro.analysis import phase_cov, whole_program_cov
from repro.callloop import (
    SelectionParams,
    build_call_loop_graph,
    marker_trace,
    select_markers,
)
from repro.callloop.profiler import CallLoopProfiler
from repro.engine import Machine, record_trace
from repro.intervals import attach_metrics, split_at_markers
from repro.workloads import all_workloads, get_workload

CAP = 400_000  # instructions per run; keeps 16 pipelines quick

NAMES = [w.name for w in all_workloads()]


@pytest.fixture(scope="module")
def pipelines():
    """Capped pipeline artifacts per workload, built once."""
    cache = {}

    def get(name):
        if name not in cache:
            wl = get_workload(name)
            program = wl.build()
            trace = record_trace(
                Machine(program, wl.ref_input, max_instructions=CAP).run()
            )
            profiler = CallLoopProfiler(program)
            graph = profiler.profile_trace(trace)
            markers = select_markers(graph, SelectionParams(ilower=10_000)).markers
            cache[name] = (wl, program, trace, graph, markers)
        return cache[name]

    return get


@pytest.mark.parametrize("name", NAMES)
def test_markers_selected(pipelines, name):
    _, _, _, graph, markers = pipelines(name)
    assert len(markers) >= 1, name
    for marker in markers:
        assert marker.avg_interval >= 10_000 or marker.merge_iterations > 1


@pytest.mark.parametrize("name", NAMES)
def test_vli_partition_valid(pipelines, name):
    _, program, trace, _, markers = pipelines(name)
    intervals = split_at_markers(program, trace, markers)
    intervals.check_partition(trace.total_instructions)
    assert (intervals.lengths > 0).all()


@pytest.mark.parametrize("name", NAMES)
def test_phases_more_homogeneous_than_whole_program(pipelines, name):
    wl, program, trace, _, markers = pipelines(name)
    intervals = split_at_markers(program, trace, markers)
    if len(intervals) < 4:
        pytest.skip("capped run too short for a meaningful CoV comparison")
    attach_metrics(intervals, trace, program, wl.ref_input)
    assert phase_cov(intervals).overall <= whole_program_cov(intervals) + 1e-9


@pytest.mark.parametrize("name", ["gzip", "swim", "gcc", "vortex", "mcf"])
def test_train_markers_fire_on_ref(pipelines, name):
    """Cross-input transfer on a capped run."""
    wl = get_workload(name)
    program = wl.build()
    train_trace = record_trace(
        Machine(program, wl.train_input, max_instructions=CAP).run()
    )
    graph = CallLoopProfiler(program).profile_trace(train_trace)
    markers = select_markers(graph, SelectionParams(ilower=10_000)).markers
    assert markers, name
    _, _, ref_trace, _, _ = pipelines(name)
    firings = marker_trace(program, wl.ref_input, markers, trace=ref_trace)
    assert firings, name
