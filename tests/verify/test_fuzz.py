"""Fuzzer determinism, adversarial shapes, and the shrinker."""

import json
from pathlib import Path

import pytest

import repro.verify.fuzz as fuzz_mod
from repro.verify.fuzz import (
    build_program,
    generate_spec,
    run_fuzz,
    shrink_spec,
)


def test_generate_spec_is_deterministic():
    assert generate_spec(42) == generate_spec(42)
    assert generate_spec(42) != generate_spec(43)


def test_specs_are_json_round_trippable():
    for seed in range(20):
        spec = generate_spec(seed)
        assert json.loads(json.dumps(spec)) == spec


def test_all_shapes_build_and_run():
    seen = set()
    seed = 0
    # draw seeds until every shape generator has been exercised
    while len(seen) < 5 and seed < 200:
        spec = generate_spec(seed)
        seen.add(spec["shape"])
        program, program_input = build_program(spec)
        assert program.procedures
        seed += 1
    assert seen == {
        "mutual_recursion", "loop_zoo", "fan_out", "degenerate", "mixed"
    }


def test_fan_out_shape_has_many_procs():
    spec = next(
        generate_spec(s) for s in range(300)
        if generate_spec(s)["shape"] == "fan_out"
    )
    assert len(spec["procs"]) > 100


def test_run_fuzz_smoke_clean():
    report = run_fuzz(seed=7, iters=5)
    assert report.ok, report.describe()
    assert report.programs_checked == 5


def test_run_fuzz_seed_streams_disjoint():
    # iteration i of seed s uses spec seed s*1_000_003+i: no overlap for
    # small iteration counts
    a = [generate_spec(0 * 1_000_003 + i) for i in range(5)]
    b = [generate_spec(1 * 1_000_003 + i) for i in range(5)]
    assert a != b


# -- shrinking ---------------------------------------------------------------


def _spec_with_noise():
    return {
        "seed": 1,
        "shape": "synthetic",
        "procs": [
            {
                "name": "p0",
                "body": [
                    {"op": "code", "size": 40, "loads": 4},
                    {
                        "op": "loop", "lo": 2, "hi": 6,
                        "body": [
                            {"op": "code", "size": 8, "loads": 0},
                            {"op": "call", "callee": "p1"},
                        ],
                    },
                    {
                        "op": "if", "prob": 0.5,
                        "then": [{"op": "code", "size": 3, "loads": 0}],
                        "else": [{"op": "code", "size": 2, "loads": 0}],
                    },
                ],
            },
            {"name": "p1", "body": [{"op": "code", "size": 5, "loads": 1}]},
            {"name": "unused", "body": [{"op": "code", "size": 9, "loads": 0}]},
        ],
    }


def _count_stmts(spec):
    def walk(stmts):
        total = 0
        for s in stmts:
            total += 1
            if s["op"] == "loop":
                total += walk(s["body"])
            elif s["op"] == "if":
                total += walk(s["then"]) + walk(s["else"])
        return total

    return sum(walk(p["body"]) for p in spec["procs"])


def test_shrink_removes_irrelevant_structure():
    """Predicate: 'fails whenever any loop statement exists'. The shrunk
    spec should be little more than that loop."""

    def has_loop(spec):
        return any(
            s["op"] == "loop"
            for stmts in fuzz_mod._iter_stmt_lists(spec)
            for s in stmts
        )

    shrunk = shrink_spec(_spec_with_noise(), has_loop)
    assert has_loop(shrunk)
    assert _count_stmts(shrunk) <= 2
    assert [p["name"] for p in shrunk["procs"]] == ["p0"]


def test_shrink_simplifies_scalars():
    def big_code(spec):
        return any(
            s["op"] == "code" and s["size"] >= 40
            for stmts in fuzz_mod._iter_stmt_lists(spec)
            for s in stmts
        )

    shrunk = shrink_spec(_spec_with_noise(), big_code)
    assert _count_stmts(shrunk) == 1
    # size stays >= 40 (the failure condition) but loads are zeroed and
    # everything else is gone
    (stmt,) = shrunk["procs"][0]["body"]
    assert stmt["op"] == "code" and stmt["size"] >= 40


def test_shrink_preserves_failure():
    calls = 0

    def flaky_looking(spec):
        nonlocal calls
        calls += 1
        return len(spec["procs"]) >= 2

    shrunk = shrink_spec(_spec_with_noise(), flaky_looking)
    assert len(shrunk["procs"]) == 2
    assert calls > 0


# -- failure path (planted bug) ---------------------------------------------


def test_failing_iteration_is_shrunk_and_persisted(tmp_path, monkeypatch):
    """Plant a fake mismatch for specs containing a loop and check the
    whole failure path: detection -> shrinking -> reproducer on disk."""
    from repro.verify.diff import DiffReport, Mismatch

    real_check = fuzz_mod._check_spec

    def rigged_check(spec, max_instructions, reuse_cap):
        report = real_check(spec, max_instructions, reuse_cap)
        has_loop = any(
            s["op"] == "loop"
            for stmts in fuzz_mod._iter_stmt_lists(spec)
            for s in stmts
        )
        if has_loop:
            report.mismatches.append(
                Mismatch("graph", "planted", 1, 2, "test bug")
            )
        return report

    monkeypatch.setattr(fuzz_mod, "_check_spec", rigged_check)
    # seed 0's stream contains loop-bearing specs within a few iterations
    report = run_fuzz(seed=0, iters=4, repro_dir=tmp_path)
    assert not report.ok
    failure = report.failures[0]
    assert _count_stmts(failure.shrunk) <= _count_stmts(failure.spec)
    assert failure.repro_path is not None
    data = json.loads(Path(failure.repro_path).read_text())
    assert data["spec"] == failure.shrunk
    assert "planted" in data["report"]


def test_replay_repro_roundtrip(tmp_path):
    """A persisted reproducer file re-runs through the public helper."""
    spec = generate_spec(3)
    path = tmp_path / "repro.json"
    path.write_text(json.dumps({"spec": spec, "max_instructions": 5000}))
    report = fuzz_mod.replay_repro(path)
    assert report.ok, report.describe()


def test_committed_repros_stay_fixed():
    """Any reproducer committed under tests/verify/repros/ must keep
    passing once the bug it captured is fixed."""
    repro_dir = Path(__file__).parent / "repros"
    for path in sorted(repro_dir.glob("*.json")):
        report = fuzz_mod.replay_repro(path)
        assert report.ok, f"{path.name}: {report.describe()}"
