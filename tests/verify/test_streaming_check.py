"""Streaming-vs-batch verify wiring: clean on real code, loud on bugs."""

import pytest

from repro.engine.machine import Machine
from repro.engine.tracing import record_trace
from repro.verify import check_streaming_corpus, diff_streaming, verify_program
from repro.workloads import get_workload


@pytest.fixture
def toy_trace(toy_program, toy_input):
    return record_trace(Machine(toy_program, toy_input))


def test_diff_streaming_clean_on_fixture(toy_program, toy_trace):
    assert diff_streaming(toy_program, toy_trace) == []


@pytest.mark.parametrize("chunk_rows", [1, 4096])
def test_diff_streaming_clean_at_chunk_extremes(
    toy_program, toy_trace, chunk_rows
):
    assert diff_streaming(toy_program, toy_trace, chunk_rows=chunk_rows) == []


def test_diff_streaming_detects_tampered_trace(toy_program, toy_trace):
    """The streaming side consumes chunk views of the same columns, so a
    divergence must come from the comparison, not the data: tamper with
    a copy fed only to the incremental side via a wrapped trace."""

    class _Tampered:
        """Proxy: batch sees the real trace, chunks see a corrupt c."""

        def __init__(self, trace):
            self._trace = trace

        def __getattr__(self, name):
            return getattr(self._trace, name)

        def __len__(self):
            return len(self._trace)

        def iter_chunks(self, chunk_rows):
            for kinds, a, b, c in self._trace.iter_chunks(chunk_rows):
                c = c.copy()
                c[0] += 1  # shift every chunk's first block size
                yield kinds, a, b, c

    mismatches = diff_streaming(toy_program, _Tampered(toy_trace))
    assert mismatches
    assert all(m.kind == "streaming" for m in mismatches)
    assert any("total" in m.key or "callback" in m.key for m in mismatches)


def test_verify_program_runs_streaming_check(toy_program, toy_input):
    report = verify_program(toy_program, toy_input)
    assert "streaming" in report.checks_run
    assert report.ok, report.describe()


def test_check_streaming_corpus_on_workload():
    result = check_streaming_corpus(workloads=["gzip"])
    assert result.ok, result.describe()
    assert result.checked == ["gzip"]
    assert "match batch" in result.describe()


def test_check_streaming_corpus_reports_divergence(monkeypatch):
    """A planted walker bug shows up as a named, detailed failure."""
    from repro.verify import streaming as streaming_check
    from repro.verify.diff import Mismatch

    def fake_diff(program, trace, params=None, **kwargs):
        return [Mismatch("streaming", "walker total", 1, 2)]

    monkeypatch.setattr(streaming_check, "diff_streaming", fake_diff)
    result = streaming_check.check_streaming_corpus(workloads=["gzip"])
    assert not result.ok
    assert result.failed == ["gzip"]
    text = result.describe()
    assert "DIVERGED gzip" in text and "walker total" in text


def test_workload_matches_batch_end_to_end():
    """One real workload through the full diff, not just the corpus API."""
    workload = get_workload("mcf")
    program = workload.build()
    trace = record_trace(Machine(program, workload.train_input))
    assert diff_streaming(program, trace) == []
