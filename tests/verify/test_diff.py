"""The comparator: clean on correct code, loud on planted bugs."""

import pytest

from repro.callloop import build_call_loop_graph
from repro.callloop.selection import SelectionParams
from repro.engine.machine import Machine
from repro.engine.tracing import record_trace
from repro.verify.diff import (
    DiffReport,
    Mismatch,
    diff_graphs,
    diff_selection,
    diff_trace_pipeline,
    verify_program,
)
from repro.verify.oracles import oracle_call_loop_graph
from repro.workloads import get_workload


def test_verify_program_clean_on_fixtures(toy_program, toy_input):
    report = verify_program(toy_program, toy_input)
    assert report.ok, report.describe()
    assert set(report.checks_run) >= {"graph", "depth", "selection", "intervals"}


@pytest.mark.parametrize("name", ["gzip", "mcf", "art"])
def test_verify_program_clean_on_workloads(name):
    workload = get_workload(name)
    report = verify_program(workload.build(), workload.train_input)
    assert report.ok, report.describe()


def _graph_pair(program, program_input):
    trace = record_trace(Machine(program, program_input).run())
    optimized = build_call_loop_graph(program, [program_input])
    return optimized, oracle_call_loop_graph(program, trace)


def test_detects_corrupted_edge_mean(toy_program, toy_input):
    optimized, oracle = _graph_pair(toy_program, toy_input)
    edge = optimized.edges[2]
    edge.stats.mean *= 1.5
    mismatches = diff_graphs(optimized, oracle)
    assert any(m.detail == "avg" for m in mismatches)


def test_detects_missing_edge(toy_program, toy_input):
    optimized, oracle = _graph_pair(toy_program, toy_input)
    key = next(iter(optimized._edges))
    del optimized._edges[key]
    mismatches = diff_graphs(optimized, oracle)
    assert any(m.optimized == "absent" for m in mismatches)


def test_detects_spurious_count(toy_program, toy_input):
    optimized, oracle = _graph_pair(toy_program, toy_input)
    optimized.edges[0].stats.count += 1
    mismatches = diff_graphs(optimized, oracle)
    assert any(m.detail == "count" for m in mismatches)


def test_trace_pipeline_clean(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    assert diff_trace_pipeline(toy_program, toy_input, trace) == []


def test_trace_pipeline_detects_tampered_trace(toy_program, toy_input):
    """A trace whose columns differ from the fast recording is flagged."""
    trace = record_trace(Machine(toy_program, toy_input).run())
    trace.c[0] += 1
    mismatches = diff_trace_pipeline(toy_program, toy_input, trace)
    assert any(m.kind == "trace" and "column" in m.key for m in mismatches)


def test_trace_pipeline_in_verify_program(toy_program, toy_input):
    report = verify_program(toy_program, toy_input)
    assert "trace-pipeline" in report.checks_run


def test_detects_wrong_total_instructions(toy_program, toy_input):
    optimized, oracle = _graph_pair(toy_program, toy_input)
    optimized.total_instructions += 7
    mismatches = diff_graphs(optimized, oracle)
    assert any(m.key == "total_instructions" for m in mismatches)


def test_detects_selection_logic_change(toy_program, toy_input):
    """A wrong ilower on one side flips pass-1 candidacy -> mismatch."""
    optimized, _ = _graph_pair(toy_program, toy_input)
    # perturb one candidate edge's cov far past any threshold: a real
    # selection divergence that the borderline filter must NOT forgive
    params = SelectionParams(ilower=500)
    from repro.callloop.selection import select_markers

    result = select_markers(optimized, params)
    assert result.markers, "fixture should select at least one marker"
    victim = result.markers.markers[0]
    edge = optimized.find_edge(victim.src, victim.dst)
    edge.stats.m2 = edge.stats.mean**2 * edge.stats.count * 25.0  # cov = 5
    # recompute oracle selection on the *unperturbed* statistics is not
    # meaningful; instead both sides see the perturbed graph and must
    # still agree — diff_selection stays clean
    assert diff_selection(optimized, params) == []


def test_float_tolerance_forgives_summation_noise(toy_program, toy_input):
    optimized, oracle = _graph_pair(toy_program, toy_input)
    edge = optimized.edges[1]
    edge.stats.mean *= 1.0 + 1e-13  # below FLOAT_RTOL
    assert diff_graphs(optimized, oracle) == []


def test_report_describe_formats():
    report = DiffReport(program="x/y")
    report.extend("graph", [])
    assert report.ok
    assert "OK" in report.describe()
    report.extend(
        "depth", [Mismatch("depth", "main[head]", 1, 2, "estimate")]
    )
    assert not report.ok
    text = report.describe()
    assert "main[head]" in text and "optimized=1" in text and "oracle=2" in text
