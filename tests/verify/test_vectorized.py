"""Fuzz-backed equivalence: every vectorized kernel vs its scalar oracle.

The vectorized analysis core (``repro.callloop.vectorized``, the batch
stats kernels, the grouped CoV aggregation, the kmeans distance matrix,
and the reuse-distance binning) promises *bit-for-bit* agreement with
the per-element Python code it replaced.  These tests drive both sides
with seeded random inputs — including the non-finite corner cases
(count-0 edges, inf/NaN moments, first-touch infinities) — and compare
exactly, not within tolerance, except where the contract itself is a
tolerance (``finite_cov_stats`` vs an ``fsum`` oracle).
"""

import math

import numpy as np
import pytest

from repro.analysis.cov import _weighted_cov, phase_cov
from repro.callloop import build_call_loop_graph
from repro.callloop.graph import CallLoopGraph, Node, NodeKind, ROOT
from repro.callloop.selection import (
    SelectionParams,
    _cov_threshold,
    select_markers,
    select_markers_scalar,
)
from repro.callloop.stats import RunningStats
from repro.callloop.vectorized import (
    build_edge_arrays,
    cov_threshold_kernel,
    finite_cov_stats,
)
from repro.intervals.base import IntervalSet
from repro.reuse.distance import (
    prev_occurrences,
    reuse_distances,
    reuse_histogram,
)
from repro.simpoint.kmeans import pairwise_sq_dists
from repro.verify.fuzz import build_program, generate_spec
from repro.verify.oracles import oracle_reuse_histogram


def bit_equal(a: float, b: float) -> bool:
    """Exact equality that treats NaN as equal to NaN."""
    return a == b or (a != a and b != b)


def random_graph(seed: int, degenerate: bool = True) -> CallLoopGraph:
    """A random call-loop graph: realistic Welford-accumulated edges plus
    (optionally) directly-assigned degenerate statistics."""
    rng = np.random.default_rng(seed)
    g = CallLoopGraph(f"fuzz-{seed}")
    kinds = [
        NodeKind.PROC_HEAD,
        NodeKind.PROC_BODY,
        NodeKind.LOOP_HEAD,
        NodeKind.LOOP_BODY,
    ]
    nodes = [
        Node(kinds[i % 4], f"p{i // 4}", label=f"n{i}") for i in range(12)
    ]
    g.observe(ROOT, nodes[0], float(rng.integers(1, 100_000)))
    n_edges = int(rng.integers(5, 25))
    for _ in range(n_edges):
        src, dst = rng.choice(len(nodes), size=2, replace=False)
        e = g.edge(nodes[src], nodes[dst])
        for _ in range(int(rng.integers(1, 6))):
            e.stats.add(float(rng.integers(0, 1_000_000)))
    if degenerate:
        a, b = nodes[-1], nodes[-2]
        g.edge(a, b)  # count 0: mean 0, m2 0, max -inf
        e = g.edge(b, a)
        e.stats = RunningStats(count=1, mean=5e4, m2=0.0, max_value=5e4)
        e = g.edge(nodes[0], nodes[-1])
        e.stats = RunningStats(
            count=3, mean=2e4, m2=float("inf"), max_value=2e4
        )  # cov = inf
        e = g.edge(nodes[1], nodes[-2])
        e.stats = RunningStats(
            count=2, mean=float("nan"), m2=4.0, max_value=1e3
        )  # avg = cov = nan
    return g


class TestEdgeArrays:
    @pytest.mark.parametrize("seed", range(20))
    def test_arrays_bit_equal_to_edge_properties(self, seed):
        g = random_graph(seed)
        arrays = build_edge_arrays(g)
        assert len(arrays) == g.num_edges
        for i, edge in enumerate(arrays.edges):
            assert arrays.index[edge.key()] == i
            assert int(arrays.count[i]) == edge.count
            assert bit_equal(float(arrays.avg[i]), edge.avg)
            assert bit_equal(float(arrays.cov[i]), edge.cov)
            assert bit_equal(float(arrays.max[i]), edge.max)
            assert bit_equal(float(arrays.total[i]), edge.total)
            assert bool(arrays.dst_is_loop[i]) == edge.dst.kind.is_loop

    def test_cached_view_invalidated_by_inplace_mutation(self):
        g = random_graph(0, degenerate=False)
        before = g.edge_arrays()
        assert g.edge_arrays() is before  # stable while untouched
        victim = g.edges[1]
        victim.stats.m2 = victim.stats.mean**2 * victim.stats.count * 25.0
        after = g.edge_arrays()
        assert after is not before
        assert bit_equal(float(after.cov[1]), victim.cov)


class TestThresholdKernel:
    @pytest.mark.parametrize("seed", range(10))
    def test_bit_equal_to_scalar_formula(self, seed):
        rng = np.random.default_rng(seed)
        avgs = np.concatenate(
            [
                rng.uniform(1.0, 1e7, size=50),
                np.array([float("inf"), 1e3, 1e4, 1e5]),
            ]
        )
        ilower = float(rng.uniform(10.0, 1e4))
        avg_hi = ilower * float(rng.uniform(1.5, 20.0))
        base = float(rng.uniform(0.0, 0.5))
        spread = float(rng.uniform(0.0, 0.5))
        floor = float(rng.uniform(0.0, 0.2))
        got = cov_threshold_kernel(avgs, ilower, avg_hi, base, spread, floor)
        for a, t in zip(avgs, got):
            want = max(_cov_threshold(a, ilower, avg_hi, base, spread), floor)
            assert bit_equal(float(t), want)

    def test_degenerate_range_is_flat_base(self):
        avgs = np.array([10.0, 1e6, float("inf")])
        got = cov_threshold_kernel(avgs, 100.0, 100.0, 0.2, 0.4, 0.05)
        assert got.tolist() == [0.2, 0.2, 0.2]


class TestFiniteCovStats:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_fsum_oracle(self, seed):
        rng = np.random.default_rng(seed)
        covs = rng.uniform(0.0, 2.0, size=int(rng.integers(1, 200)))
        covs = np.concatenate(
            [covs, [float("inf"), float("-inf"), float("nan")]]
        )
        base, spread = finite_cov_stats(covs)
        finite = [c for c in covs.tolist() if math.isfinite(c)]
        mean = math.fsum(finite) / len(finite)
        var = math.fsum((c - mean) ** 2 for c in finite) / len(finite)
        assert base == pytest.approx(mean, abs=1e-9)
        assert spread == pytest.approx(math.sqrt(var), abs=1e-9)

    def test_empty_and_all_non_finite(self):
        assert finite_cov_stats(np.array([])) == (0.0, 0.0)
        assert finite_cov_stats(np.array([np.inf, np.nan])) == (0.0, 0.0)


def assert_same_selection(graph, params):
    vec = select_markers(graph, params)
    ref = select_markers_scalar(graph, params)
    assert [e.key() for e in vec.candidates] == [
        e.key() for e in ref.candidates
    ]
    assert bit_equal(vec.cov_base, ref.cov_base)
    assert bit_equal(vec.cov_spread, ref.cov_spread)
    strip = lambda m: (
        m.marker_id,
        m.src,
        m.dst,
        m.avg_interval,
        m.cov,
        m.max_interval,
    )
    assert [strip(m) for m in vec.markers.markers] == [
        strip(m) for m in ref.markers.markers
    ]


class TestSelectionEngines:
    @pytest.mark.parametrize("seed", range(25))
    def test_agree_on_random_graphs(self, seed):
        g = random_graph(seed)
        for params in (
            SelectionParams(ilower=1_000),
            SelectionParams(ilower=100_000, procedures_only=True),
            SelectionParams(ilower=50, cov_floor=0.0),
        ):
            assert_same_selection(g, params)

    @pytest.mark.parametrize("seed", [3, 17, 42, 91])
    def test_agree_on_fuzzed_programs(self, seed):
        program, program_input = build_program(generate_spec(seed))
        graph = build_call_loop_graph(program, [program_input])
        assert_same_selection(graph, SelectionParams(ilower=500))


class TestKmeansDistances:
    @pytest.mark.parametrize("shape", [(1, 1, 1), (7, 3, 4), (50, 8, 16)])
    def test_bit_equal_to_broadcast(self, shape):
        n, k, d = shape
        rng = np.random.default_rng(n * 100 + k)
        points = rng.normal(size=(n, d))
        centroids = rng.normal(size=(k, d))
        got = pairwise_sq_dists(points, centroids)
        want = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assert np.array_equal(got, want)


class TestReuseKernels:
    @pytest.mark.parametrize("seed", range(10))
    def test_prev_occurrences_matches_dict_scan(self, seed):
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, 40, size=int(rng.integers(0, 300)))
        got = prev_occurrences(lines)
        last = {}
        for t, line in enumerate(lines.tolist()):
            assert got[t] == last.get(line, -1)
            last[line] = t

    @pytest.mark.parametrize("seed", range(10))
    def test_histogram_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, 1 << 20, size=400)
        distances = reuse_distances(addresses)
        got = reuse_histogram(distances)
        assert got.tolist() == oracle_reuse_histogram(distances)
        assert int(got.sum()) == len(distances)

    def test_histogram_saturates_and_counts_infinities(self):
        d = np.array([0.0, 1.0, 2.0**30, np.inf, np.inf])
        got = reuse_histogram(d, num_bins=8)
        assert got[7] == 2  # infinities in the last bin
        assert got[6] == 1  # 2**30 saturates into the last finite bin
        assert got.tolist() == oracle_reuse_histogram(d, num_bins=8)

    def test_histogram_rejects_tiny_bin_count(self):
        with pytest.raises(ValueError):
            reuse_histogram(np.array([1.0]), num_bins=1)


class TestPhaseCovAggregation:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_per_phase_scalar_loop(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 400))
        lengths = rng.integers(0, 10_000, size=n)
        phase_ids = rng.integers(0, 6, size=n)
        values = rng.uniform(0.2, 4.0, size=n)
        iset = IntervalSet(
            "fuzz",
            "fixed",
            row_bounds=np.arange(n + 1, dtype=np.int64),
            start_ts=np.concatenate([[0], np.cumsum(lengths)[:-1]]),
            lengths=lengths,
            phase_ids=phase_ids,
        )
        result = phase_cov(iset, values)
        weights = lengths.astype(np.float64)
        for p, cov in result.per_phase.items():
            mask = phase_ids == p
            want = _weighted_cov(values[mask], weights[mask])
            assert cov == pytest.approx(want, rel=1e-12, abs=1e-12)

    def test_zero_weight_phase_reports_zero(self):
        iset = IntervalSet(
            "z",
            "fixed",
            row_bounds=np.array([0, 1, 2]),
            start_ts=np.array([0, 0]),
            lengths=np.array([0, 10]),
            phase_ids=np.array([1, 2]),
        )
        result = phase_cov(iset, np.array([1.5, 2.5]))
        assert result.per_phase[1] == 0.0
        assert result.phase_weights[1] == 0.0
