"""The committed golden corpus matches a from-scratch recompute."""

import json
from pathlib import Path

import pytest

from repro.verify.golden import (
    check_golden_corpus,
    compute_golden_entry,
    default_golden_dir,
    write_golden_corpus,
)
from repro.workloads import all_workloads


def test_default_dir_is_committed_corpus():
    golden = default_golden_dir()
    assert golden.name == "golden"
    assert golden.is_dir(), "tests/golden/ must be committed"


def test_corpus_covers_every_bundled_workload():
    names = {w.name for w in all_workloads()}
    files = {p.stem for p in default_golden_dir().glob("*.json")}
    assert files == names


def test_committed_corpus_matches_recompute():
    """The regression check itself: profiling + depth + selection today
    must equal the committed documents exactly."""
    result = check_golden_corpus()
    assert result.ok, result.describe()
    assert len(result.checked) == len(list(all_workloads()))


def test_entry_is_deterministic():
    assert compute_golden_entry("gzip") == compute_golden_entry("gzip")


def test_missing_entry_reported(tmp_path):
    result = check_golden_corpus(tmp_path, workloads=["gzip"])
    assert not result.ok
    assert result.missing == ["gzip"]
    assert "MISSING" in result.describe()


def test_stale_entry_reported_with_detail(tmp_path):
    write_golden_corpus(tmp_path, workloads=["gzip"])
    path = tmp_path / "gzip.json"
    doc = json.loads(path.read_text())
    doc["graph"]["total_instructions"] += 1
    path.write_text(json.dumps(doc))
    result = check_golden_corpus(tmp_path, workloads=["gzip"])
    assert result.stale == ["gzip"]
    details = "\n".join(result.details["gzip"])
    assert "total_instructions" in details


def test_refresh_writes_loadable_graphs(tmp_path):
    from repro.callloop.serialization import graph_from_dict

    write_golden_corpus(tmp_path, workloads=["mcf"])
    doc = json.loads((tmp_path / "mcf.json").read_text())
    graph = graph_from_dict(doc["graph"])
    assert graph.num_edges > 0
    assert doc["selections"]["default"]["markers"] is not None
    assert doc["selections"]["procs_only"] is not None
    assert "<root>" in doc["processing_order"]  # deepest nodes come first
