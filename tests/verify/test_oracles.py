"""The naive oracles agree with the optimized pipeline on known programs."""

import math

import pytest

from repro.callloop import build_call_loop_graph
from repro.callloop.depth import estimate_max_depth, processing_order
from repro.callloop.graph import CallLoopGraph, Node, NodeKind
from repro.engine.machine import Machine
from repro.engine.tracing import record_trace
from repro.verify.oracles import (
    graph_has_cycle,
    oracle_call_loop_graph,
    oracle_estimate_depth,
    oracle_longest_path_depths,
    oracle_processing_order,
    oracle_reuse_distances,
)


def _trace(program, program_input):
    return record_trace(Machine(program, program_input).run())


@pytest.fixture(
    params=["toy_program", "recursive_program", "loop_only_program"]
)
def any_program(request):
    return request.getfixturevalue(request.param)


def test_oracle_graph_matches_profiler(any_program, toy_input):
    trace = _trace(any_program, toy_input)
    optimized = build_call_loop_graph(any_program, [toy_input])
    oracle = oracle_call_loop_graph(any_program, trace)

    assert oracle.total_instructions == optimized.total_instructions
    assert set(oracle.edge_keys()) == {(e.src, e.dst) for e in optimized.edges}
    for edge in optimized.edges:
        expected = oracle.stats((edge.src, edge.dst))
        assert edge.count == expected.count, (edge.src, edge.dst)
        assert edge.avg == pytest.approx(expected.mean, rel=1e-12)
        assert edge.cov == pytest.approx(expected.cov, rel=1e-9, abs=1e-12)
        assert edge.max == expected.max_value


def test_oracle_graph_preserves_observation_order(toy_program, toy_input):
    """Edge enumeration order — which selection depends on — must agree."""
    trace = _trace(toy_program, toy_input)
    optimized = build_call_loop_graph(toy_program, [toy_input])
    oracle = oracle_call_loop_graph(toy_program, trace)
    assert list(oracle.edge_keys()) == [(e.src, e.dst) for e in optimized.edges]


def test_oracle_depth_matches_estimate(any_program, toy_input):
    graph = build_call_loop_graph(any_program, [toy_input])
    assert oracle_estimate_depth(graph) == estimate_max_depth(graph)
    assert [str(n) for n in oracle_processing_order(graph)] == [
        str(n) for n in processing_order(graph)
    ]


def _chain_graph():
    """ROOT -> a.head -> a.body -> b.head -> b.body (a DAG)."""
    from repro.callloop.graph import ROOT

    g = CallLoopGraph("chain")
    ah = Node(NodeKind.PROC_HEAD, "a", label="a")
    ab = Node(NodeKind.PROC_BODY, "a", label="a")
    bh = Node(NodeKind.PROC_HEAD, "b", label="b")
    bb = Node(NodeKind.PROC_BODY, "b", label="b")
    for src, dst in [(ROOT, ah), (ah, ab), (ab, bh), (bh, bb)]:
        g.observe(src, dst, 10.0)
    return g, {ROOT: 0, ah: 1, ab: 2, bh: 3, bb: 4}


def test_brute_force_depth_on_dag():
    g, want = _chain_graph()
    assert not graph_has_cycle(g)
    exact = oracle_longest_path_depths(g)
    assert exact == want
    # on a DAG the modified DFS is exact too
    assert estimate_max_depth(g) == want


def test_brute_force_budget_exhaustion():
    g, _ = _chain_graph()
    assert oracle_longest_path_depths(g, step_budget=2) is None


def test_direct_recursion_graph_is_acyclic(recursive_program, toy_input):
    """Recursive activations are not outermost, so fib's self-call adds
    no body->head edge — the call-loop graph of direct recursion is a DAG."""
    graph = build_call_loop_graph(recursive_program, [toy_input])
    assert not graph_has_cycle(graph)


def test_cycle_detection_on_mutual_context_graph():
    """a called under c and c called under a (different call chains)
    produces a genuine cycle."""
    g, _ = _chain_graph()
    assert not graph_has_cycle(g)
    ab = Node(NodeKind.PROC_BODY, "a", label="a")
    ch = Node(NodeKind.PROC_HEAD, "c", label="c")
    cb = Node(NodeKind.PROC_BODY, "c", label="c")
    ah = Node(NodeKind.PROC_HEAD, "a", label="a")
    g.observe(ab, ch, 5.0)
    g.observe(ch, cb, 4.0)
    g.observe(cb, ah, 3.0)
    assert graph_has_cycle(g)


def test_oracle_reuse_distances_hand_example():
    # line size 64: addresses 0 and 32 share a line
    addrs = [0, 64, 32, 128, 64, 0]
    got = oracle_reuse_distances(addrs, line_bytes=64)
    assert got[0] == math.inf  # line 0: first touch
    assert got[1] == math.inf  # line 1: first touch
    assert got[2] == 1.0  # line 0 again; line 1 touched in between
    assert got[3] == math.inf  # line 2: first touch
    assert got[4] == 2.0  # line 1; lines 0 and 2 in between
    assert got[5] == 2.0  # line 0; lines 2 and 1 in between


def test_oracle_reuse_matches_fenwick():
    import numpy as np

    from repro.reuse.distance import reuse_distances

    rng = np.random.default_rng(3)
    addrs = rng.integers(0, 4096, size=500, dtype=np.int64) * 8
    optimized = reuse_distances(addrs, line_bytes=64).tolist()
    oracle = oracle_reuse_distances(addrs.tolist(), line_bytes=64)
    assert optimized == oracle
