"""IncrementalWalker vs the batch walker: callback-for-callback parity."""

import pytest

from repro.callloop.graph import NodeTable
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.engine.machine import Machine
from repro.engine.tracing import record_trace
from repro.ir.program import ProgramInput
from repro.streaming import IncrementalWalker


class _Log(ContextHandler):
    """Records every edge callback (and the block count) verbatim."""

    def __init__(self):
        self.events = []
        self.blocks = 0

    def on_edge_open(self, src, dst, t, source):
        self.events.append(("open", src, dst, t, str(source)))

    def on_edge_close(self, src, dst, t_open, t_close, source):
        self.events.append(("close", src, dst, t_open, t_close, str(source)))

    def on_block(self, block_id, size, t):
        self.blocks += 1

    def on_branch(self, address, target, taken):
        self.events.append(("branch", address, target, taken))


def _record(program, seed=7):
    return record_trace(Machine(program, ProgramInput("test", {}, seed=seed)))


def _batch_log(program, trace):
    table = NodeTable(program)
    log = _Log()
    walker = ContextWalker(program, table)
    total = walker.walk_events(trace.replay(), log)
    return log, total, walker.row


def _stream_log(program, trace, chunk_rows):
    table = NodeTable(program)
    log = _Log()
    walker = IncrementalWalker(program, table, handler=log)
    for chunk in trace.iter_chunks(chunk_rows):
        walker.feed_rows(*chunk)
    total = walker.finish()
    return log, total, walker.row


@pytest.mark.parametrize("chunk_rows", [1, 7, 257, 1 << 20])
@pytest.mark.parametrize(
    "fixture", ["toy_program", "recursive_program", "loop_only_program"]
)
def test_chunked_feed_matches_batch_walk(request, fixture, chunk_rows):
    """Any chunking of the stream produces the batch walker's exact
    callback sequence, total, and final row cursor."""
    program = request.getfixturevalue(fixture)
    trace = _record(program)
    batch, batch_total, batch_row = _batch_log(program, trace)
    stream, stream_total, stream_row = _stream_log(program, trace, chunk_rows)
    assert stream.events == batch.events
    assert stream.blocks == batch.blocks
    assert stream_total == batch_total == trace.total_instructions
    assert stream_row == batch_row == len(trace.kinds)


def test_scalar_feed_matches_chunked(toy_program):
    trace = _record(toy_program)
    chunked, chunked_total, _ = _stream_log(toy_program, trace, 64)
    log = _Log()
    walker = IncrementalWalker(toy_program, handler=log)
    for kind, a, b, c in trace.iter_packed():
        walker.feed(kind, a, b, c)
    assert walker.finish() == chunked_total
    assert log.events == chunked.events


def test_entry_edges_open_at_construction(toy_program):
    log = _Log()
    IncrementalWalker(toy_program, handler=log)
    # root -> main.head and main.head -> main.body, both at t=0
    assert [e[:2] for e in log.events[:2]] == [("open", 0), ("open", 1)]
    assert all(e[3] == 0 for e in log.events[:2])


def test_finished_walker_rejects_feeds(toy_program):
    trace = _record(toy_program)
    walker = IncrementalWalker(toy_program, handler=_Log())
    for chunk in trace.iter_chunks(4096):
        walker.feed_rows(*chunk)
    walker.finish()
    assert walker.finished
    with pytest.raises(RuntimeError, match="finished"):
        walker.feed(0, 0, 0, 0)
    with pytest.raises(RuntimeError, match="finished"):
        walker.feed_rows(trace.kinds, trace.a, trace.b, trace.c)
    with pytest.raises(RuntimeError, match="finished"):
        walker.finish()


def test_finish_unwinds_open_frames(toy_program):
    """A stream cut mid-run still closes every open span at finish()."""
    trace = _record(toy_program)
    cut = len(trace.kinds) // 2
    log = _Log()
    walker = IncrementalWalker(toy_program, handler=log)
    walker.feed_rows(trace.kinds[:cut], trace.a[:cut], trace.b[:cut], trace.c[:cut])
    walker.finish()
    opens = [e[1:3] for e in log.events if e[0] == "open"]
    closes = [e[1:3] for e in log.events if e[0] == "close"]
    # every opened edge span is closed (pairwise multiset equality)
    assert sorted(opens) == sorted(closes)


def test_depth_tracks_call_stack(recursive_program):
    trace = _record(recursive_program)
    walker = IncrementalWalker(recursive_program, handler=_Log())
    max_depth = 0
    for kind, a, b, c in trace.iter_packed():
        walker.feed(kind, a, b, c)
        max_depth = max(max_depth, walker.depth)
    assert max_depth > 1  # recursion actually nested
    walker.finish()
    assert walker.depth == 0


def test_iter_chunks_covers_trace(toy_program):
    trace = _record(toy_program)
    chunks = list(trace.iter_chunks(100))
    assert sum(len(k) for k, _, _, _ in chunks) == len(trace.kinds)
    assert all(len(k) <= 100 for k, _, _, _ in chunks)
    with pytest.raises(ValueError):
        list(trace.iter_chunks(0))
