"""StreamingPhaseMonitor: batch equivalence, bounded memory, re-selection."""

import dataclasses

import pytest

from repro.callloop import SelectionParams, select_markers
from repro.callloop.graph import NodeKind, NodeTable
from repro.callloop.markers import MarkerSet, MarkerTracker
from repro.callloop.profiler import CallLoopProfiler
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.callloop.serialization import graph_to_dict, marker_set_to_dict
from repro.engine.machine import Machine
from repro.engine.tracing import record_trace
from repro.runtime import PhaseMonitor
from repro.streaming import (
    StreamingConfig,
    StreamingPhaseMonitor,
    stream_trace,
)

PARAMS = SelectionParams(ilower=500)


@pytest.fixture
def toy_trace(toy_program, toy_input):
    return record_trace(Machine(toy_program, toy_input))


@pytest.fixture
def toy_batch(toy_program, toy_trace):
    graph = CallLoopProfiler(toy_program).profile_trace(toy_trace)
    return graph, select_markers(graph, PARAMS)


def _equiv_config(**overrides):
    """Unbounded window, drift disabled: the batch-equivalence setup."""
    defaults = dict(
        slot_instructions=1000,
        window_slots=0,
        drift_threshold=None,
        selection=PARAMS,
    )
    defaults.update(overrides)
    return StreamingConfig(**defaults)


@pytest.mark.parametrize("chunk_rows", [64, 4096])
def test_unbounded_stream_is_bit_identical_to_batch(
    toy_program, toy_trace, toy_batch, chunk_rows
):
    """The tentpole guarantee: unbounded window + drift off => windowed
    graph, selection, and phase changes all equal the batch path."""
    graph, selection = toy_batch
    monitor = stream_trace(
        toy_program,
        toy_trace,
        marker_set=selection.markers,
        config=_equiv_config(),
        chunk_rows=chunk_rows,
    )
    assert graph_to_dict(monitor.window_graph()) == graph_to_dict(graph)
    assert marker_set_to_dict(monitor.select_now().markers) == marker_set_to_dict(
        selection.markers
    )
    batch = PhaseMonitor(toy_program, selection.markers)
    total = batch.run(toy_trace.replay())
    assert monitor.changes == batch.changes
    assert monitor.dwells == batch.dwells
    assert monitor.time_in_phase == batch.time_in_phase
    assert sum(monitor.time_in_phase.values()) == total


def test_slot_partitioning_is_irrelevant_to_the_merge(
    toy_program, toy_trace, toy_batch
):
    """Any slot size folds to the same unbounded-window graph."""
    graph, _ = toy_batch
    for slot in (500, 3000, 10**9):
        monitor = stream_trace(
            toy_program,
            toy_trace,
            config=_equiv_config(slot_instructions=slot),
        )
        assert graph_to_dict(monitor.window_graph()) == graph_to_dict(graph)


def test_bounded_window_bounds_slot_count(toy_program, toy_trace):
    config = StreamingConfig(
        slot_instructions=1000, window_slots=4, selection=PARAMS
    )
    monitor = stream_trace(toy_program, toy_trace, config=config)
    assert monitor.window.num_slots <= 4
    assert monitor.window.evicted_slots > 0  # the stream outran the window
    assert monitor.slots_sealed > 4


def test_cold_start_picks_up_markers(toy_program, toy_trace):
    """No initial markers: the first slot seals, selection runs on the
    window, and phase tracking starts mid-stream."""
    config = StreamingConfig(
        slot_instructions=2000,
        window_slots=4,
        drift_threshold=0.25,
        selection=PARAMS,
    )
    monitor = stream_trace(toy_program, toy_trace, config=config)
    assert monitor.reselections, "cold start never picked up markers"
    first = monitor.reselections[0]
    assert first.drifted_edges == 0  # pickup, not drift
    assert first.num_markers == len(monitor.marker_set.markers) or len(
        monitor.reselections
    ) > 1
    assert monitor.marker_set.markers
    assert monitor.changes  # phases were actually tracked after pickup


def test_drift_disabled_never_reselects(toy_program, toy_trace, toy_batch):
    _, selection = toy_batch
    monitor = stream_trace(
        toy_program, toy_trace, marker_set=selection.markers, config=_equiv_config()
    )
    assert monitor.reselections == []
    assert monitor.drift_events == 0
    assert monitor.marker_set is selection.markers  # never swapped


def test_tiny_drift_threshold_triggers_reselection(
    toy_program, toy_trace, toy_batch
):
    """A hair-trigger threshold must observe drift on a stochastic
    workload and hot-swap the marker set."""
    _, selection = toy_batch
    config = StreamingConfig(
        slot_instructions=1000,
        window_slots=4,
        drift_threshold=1e-9,
        min_edge_count=1,
        selection=PARAMS,
    )
    monitor = stream_trace(
        toy_program, toy_trace, marker_set=selection.markers, config=config
    )
    assert monitor.drift_events > 0
    assert monitor.reselections
    assert all(r.drifted_edges > 0 for r in monitor.reselections)


def test_streaming_is_deterministic(toy_program, toy_trace):
    config = StreamingConfig(
        slot_instructions=1000,
        window_slots=4,
        drift_threshold=0.25,
        selection=PARAMS,
    )
    a = stream_trace(toy_program, toy_trace, config=config)
    b = stream_trace(toy_program, toy_trace, config=config)
    assert a.changes == b.changes
    assert a.reselections == b.reselections
    assert a.drift_events == b.drift_events
    assert marker_set_to_dict(a.marker_set) == marker_set_to_dict(b.marker_set)


def test_finish_closes_dwell_accounting(toy_program, toy_trace, toy_batch):
    _, selection = toy_batch
    monitor = StreamingPhaseMonitor(
        toy_program, selection.markers, _equiv_config()
    )
    monitor.feed_trace(toy_trace)
    total = monitor.finish()
    assert total == toy_trace.total_instructions
    assert sum(monitor.time_in_phase.values()) == total
    assert len(monitor.dwells) == len(monitor.changes) + 1
    assert monitor.phase_sequence[0] == 0


def test_on_change_callback_fires_and_propagates(toy_program, toy_trace, toy_batch):
    _, selection = toy_batch
    seen = []
    stream_trace(
        toy_program,
        toy_trace,
        marker_set=selection.markers,
        config=_equiv_config(),
        on_change=seen.append,
    )
    assert seen and all(c.new_phase != c.previous_phase for c in seen)

    def boom(change):
        raise RuntimeError("controller failed")

    with pytest.raises(RuntimeError, match="controller failed"):
        stream_trace(
            toy_program,
            toy_trace,
            marker_set=selection.markers,
            config=_equiv_config(),
            on_change=boom,
        )


def test_telemetry_counters_and_lane(toy_program, toy_trace):
    from repro.telemetry import telemetry_session

    config = StreamingConfig(
        slot_instructions=1000,
        window_slots=4,
        drift_threshold=0.25,
        selection=PARAMS,
    )
    with telemetry_session() as tm:
        monitor = stream_trace(toy_program, toy_trace, config=config)
    counters = tm.metrics.counters
    assert counters["streaming.slots_sealed"] >= monitor.window.num_slots
    assert counters["streaming.events"] == monitor.events_fed
    assert counters["streaming.reselections"] == len(monitor.reselections)
    instants = [i for i in tm.instants if i.name == "streaming.reselection"]
    assert len(instants) == len(monitor.reselections)
    assert all(
        tm.lane_labels[i.tid] == "streaming" for i in instants
    )


def test_config_validation():
    with pytest.raises(ValueError):
        StreamingConfig(slot_instructions=0)
    with pytest.raises(ValueError):
        StreamingConfig(window_slots=-1)
    with pytest.raises(ValueError):
        StreamingConfig(drift_threshold=0.0)
    with pytest.raises(ValueError):
        StreamingConfig(min_interval=-1)
    with pytest.raises(ValueError):
        StreamingConfig(min_edge_count=0)


# -- merged-iteration markers under hysteresis (satellite) --------------------


def _merged_loop_marker_set(program, selection, merge_iterations=5):
    """A two-marker set: one loop head->body marker rewritten to fire
    every Nth iteration, plus one ordinary marker so phases alternate."""
    loop_marker = next(
        m
        for m in selection.markers
        if m.src.kind == NodeKind.LOOP_HEAD and m.dst.kind == NodeKind.LOOP_BODY
    )
    other = next(
        m for m in selection.markers if m.edge_key != loop_marker.edge_key
    )
    merged = dataclasses.replace(
        loop_marker, marker_id=1, merge_iterations=merge_iterations
    )
    plain = dataclasses.replace(other, marker_id=2, merge_iterations=1)
    return MarkerSet(
        program.name, program.variant, PARAMS.ilower, None, [merged, plain]
    )


class _FiringLog(ContextHandler):
    """Every (marker_id, t) a fresh tracker fires, with no monitor on
    top — the raw cadence, unaffected by phase/hysteresis suppression."""

    def __init__(self, program, markers):
        self.table = NodeTable(program)
        self.tracker = MarkerTracker(markers, self.table)
        self.fired = []

    def on_edge_open(self, src, dst, t, source):
        marker = self.tracker.edge_opened(src, dst)
        if marker is not None:
            self.fired.append((marker.marker_id, t))


def test_streaming_hysteresis_does_not_rewind_merged_cadence(
    toy_program, toy_trace, toy_batch
):
    """min_interval suppression must not reset the every-Nth counter:
    every reported change still lands on a raw-cadence firing point."""
    _, selection = toy_batch
    markers = _merged_loop_marker_set(toy_program, selection)
    raw = _FiringLog(toy_program, markers)
    ContextWalker(toy_program, raw.table).walk_events(toy_trace.replay(), raw)
    eager = stream_trace(
        toy_program, toy_trace, marker_set=markers, config=_equiv_config()
    )
    lazy = stream_trace(
        toy_program,
        toy_trace,
        marker_set=markers,
        config=_equiv_config(min_interval=3000),
    )
    # the two markers alternate, so the merged cadence keeps re-firing
    assert len(eager.changes) > 2
    raw_points = set(raw.fired)
    assert all((c.marker.marker_id, c.t) in raw_points for c in eager.changes)
    assert all((c.marker.marker_id, c.t) in raw_points for c in lazy.changes)
    # hysteresis suppressed some changes but never invented or shifted one
    assert len(lazy.changes) < len(eager.changes)
    assert all(c.time_in_previous >= 3000 for c in lazy.changes)
    # the tracker's counters kept advancing through suppressed firings
    assert sum(lazy.tracker._counters.values()) > 0


def test_streaming_matches_batch_monitor_with_merged_markers(
    toy_program, toy_trace, toy_batch
):
    _, selection = toy_batch
    markers = _merged_loop_marker_set(toy_program, selection)
    for min_interval in (0, 3000):
        streaming = stream_trace(
            toy_program,
            toy_trace,
            marker_set=markers,
            config=_equiv_config(min_interval=min_interval),
        )
        batch = PhaseMonitor(toy_program, markers, min_interval=min_interval)
        batch.run(toy_trace.replay())
        assert streaming.changes == batch.changes
        assert streaming.dwells == batch.dwells
