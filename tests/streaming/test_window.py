"""StreamingWindow: slot sealing, eviction bounds, exact merges."""

import pytest

from repro.callloop.stats import MomentStats
from repro.streaming import DriftDetector, StreamingWindow


def test_observe_accumulates_into_live_slot():
    w = StreamingWindow()
    w.observe(1, 2, 10, None)
    w.observe(1, 2, 20, None)
    entry = w.current[(1, 2)]
    assert entry[0].count == 2
    assert entry[0].total == 30
    assert w.observations == 2


def test_seal_rolls_live_slot_into_window():
    w = StreamingWindow()
    w.observe(1, 2, 10, None)
    assert w.seal() == 0
    assert w.num_slots == 1
    assert w.current == {}


def test_bounded_window_evicts_oldest():
    w = StreamingWindow(window_slots=3)
    for i in range(5):
        w.observe(1, 2, i + 1, None)
        w.seal()
    assert w.num_slots == 3
    assert w.evicted_slots == 2
    # the oldest observations (values 1, 2) are gone
    merged = w.merged_edges()
    assert merged[(1, 2)][0].total == 3 + 4 + 5


def test_unbounded_window_keeps_everything():
    w = StreamingWindow(window_slots=0)
    for i in range(10):
        w.observe(1, 2, 1, None)
        w.seal()
    assert w.num_slots == 10
    assert w.evicted_slots == 0


def test_merged_edges_equals_sequential_accumulation():
    """Merging slots in order reproduces the one-pass moments exactly."""
    sequential = MomentStats()
    w = StreamingWindow()
    values = [5, 17, 3, 99, 42, 7, 7, 1]
    for i, v in enumerate(values):
        sequential.add(v)
        w.observe(4, 9, v, None)
        if i % 3 == 2:
            w.seal()
    merged = w.merged_edges()[(4, 9)][0]
    assert (merged.count, merged.total, merged.sumsq) == (
        sequential.count,
        sequential.total,
        sequential.sumsq,
    )
    assert merged.max_value == sequential.max_value
    assert merged.min_value == sequential.min_value


def test_merged_edges_does_not_mutate_slots():
    """Aggregation copies: the window keeps sliding afterwards."""
    w = StreamingWindow()
    w.observe(1, 2, 10, None)
    w.seal()
    w.observe(1, 2, 20, None)
    before = w.slots[0][(1, 2)][0].total
    w.merged_edges()
    w.merged_edges()  # twice: a second merge must see pristine slots
    assert w.slots[0][(1, 2)][0].total == before
    assert w.merged_edges()[(1, 2)][0].total == 30


def test_merged_edges_preserves_first_close_order():
    """Edge order = first appearance across slots in arrival order."""
    w = StreamingWindow()
    w.observe(3, 4, 1, None)
    w.observe(1, 2, 1, None)
    w.seal()
    w.observe(5, 6, 1, None)
    w.observe(3, 4, 1, None)
    w.seal()
    assert list(w.merged_edges()) == [(3, 4), (1, 2), (5, 6)]


def test_merged_moments_restricts_to_pairs():
    w = StreamingWindow()
    w.observe(1, 2, 10, None)
    w.observe(3, 4, 5, None)
    w.seal()
    w.observe(1, 2, 30, None)
    moments = w.merged_moments([(1, 2)])
    assert set(moments) == {(1, 2)}
    assert moments[(1, 2)].total == 40


def test_rejects_negative_bound():
    with pytest.raises(ValueError):
        StreamingWindow(window_slots=-1)


# -- drift detector -----------------------------------------------------------


def test_drift_detector_flags_cov_shift():
    det = DriftDetector(threshold=0.1)
    det.rebase({(1, 2): 0.05, (3, 4): 0.5})
    assert det.check({(1, 2): 0.06, (3, 4): 0.55}) == []
    assert det.check({(1, 2): 0.30, (3, 4): 0.55}) == [(1, 2)]
    assert det.check({(1, 2): 0.30, (3, 4): 0.9}) == [(1, 2), (3, 4)]


def test_drift_detector_ignores_unobserved_edges():
    det = DriftDetector(threshold=0.1)
    det.rebase({(1, 2): 0.05})
    assert det.check({}) == []  # silence is not drift


def test_drift_detector_rejects_bad_threshold():
    with pytest.raises(ValueError):
        DriftDetector(threshold=0.0)
    with pytest.raises(ValueError):
        DriftDetector(threshold=-1.0)
