"""Smoke tests of the figure modules on a single small workload.

The full-suite versions run under ``benchmarks/``; these verify the
experiment code paths (table structure, memoization, row contents) at
unit-test cost.
"""

import pytest

from repro.experiments import fig7, fig8, fig9
from repro.experiments.behavior import APPROACHES, behavior_matrix
from repro.experiments.fig1112 import ALL_CONFIGS, cells_for, run_fig11, run_fig12
from repro.experiments.runner import Runner
from repro.experiments.selection_time import run as run_selection

SPECS = ["vortex/one"]


@pytest.fixture(scope="module")
def runner():
    return Runner()


def test_behavior_matrix_memoized(runner):
    a = behavior_matrix(runner, SPECS)
    b = behavior_matrix(runner, SPECS)
    assert a is b
    assert set(a) == set(SPECS)
    assert set(a[SPECS[0]]) == set(APPROACHES)


def test_fig7_table(runner):
    table = fig7.run(runner, SPECS)
    assert table.column("workload") == SPECS + ["avg"]
    for approach in APPROACHES:
        values = [float(x.replace(",", "")) for x in table.column(approach)]
        assert all(v > 0 for v in values)


def test_fig8_table(runner):
    table = fig8.run(runner, SPECS)
    bbv = int(table.column("BBV")[0])
    marker = int(table.column("no limit self")[0])
    assert bbv >= marker >= 1


def test_fig9_table(runner):
    table = fig9.run(runner, SPECS)
    marker_cov = float(table.column("no limit self")[0])
    whole = float(table.column("1m whole program")[0])
    assert marker_cov < whole


def test_fig1112_cells(runner):
    cells = cells_for(runner, SPECS[0])
    assert set(cells) == set(ALL_CONFIGS)
    assert cells["SP_1M"].simulated_instructions < cells["SP_100M"].simulated_instructions
    for cell in cells.values():
        assert 0 <= cell.cpi_error < 1.0
        assert cell.num_points >= 1
    t11 = run_fig11(runner, SPECS)
    t12 = run_fig12(runner, SPECS)
    assert len(t11.rows) == len(SPECS) + 1
    assert len(t12.rows) == len(SPECS) + 1


def test_selection_time_table(runner):
    table = run_selection(runner, SPECS)
    assert float(table.column("no-limit (s)")[0]) < 0.5
