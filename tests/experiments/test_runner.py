"""Integration tests for the memoizing experiment runner.

These use the two smallest workloads (tomcatv-train and vortex) to keep
runtime modest; the full pipelines over all workloads run under
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments.runner import MARKER_VARIANTS, Runner
from repro.ir.linker import ALPHA_O0

SPEC = "vortex/one"


@pytest.fixture(scope="module")
def runner():
    return Runner()


def test_program_cached(runner):
    assert runner.program(SPEC) is runner.program(SPEC)


def test_trace_cached_and_partition_consistent(runner):
    t1 = runner.trace(SPEC, "train")
    t2 = runner.trace(SPEC, "train")
    assert t1 is t2
    assert t1.total_instructions > 0


def test_variant_program_differs(runner):
    base = runner.program(SPEC)
    o0 = runner.program(SPEC, ALPHA_O0)
    assert o0 is not base
    assert o0.variant == "alpha-O0"
    assert runner.trace(SPEC, variant=ALPHA_O0).total_instructions > (
        runner.trace(SPEC).total_instructions
    )


def test_graph_self_vs_cross(runner):
    self_graph = runner.graph(SPEC, "ref")
    cross_graph = runner.graph(SPEC, "train")
    assert self_graph is not cross_graph
    assert self_graph.total_instructions != cross_graph.total_instructions


@pytest.mark.parametrize("variant", MARKER_VARIANTS)
def test_all_marker_variants_produce_markers(runner, variant):
    markers = runner.markers(SPEC, variant)
    assert len(markers) >= 1
    assert runner.markers(SPEC, variant) is markers  # cached


def test_unknown_variant_rejected(runner):
    with pytest.raises(ValueError):
        runner.markers(SPEC, "bogus")


def test_fixed_intervals_have_metrics(runner):
    intervals, profile = runner.fixed_intervals(SPEC, 10_000, "train")
    intervals.check_partition(runner.trace(SPEC, "train").total_instructions)
    assert intervals.cpis is not None
    assert profile.hits.shape[1] == 8
    # misses monotone non-increasing in ways
    misses = [profile.misses_at(w).sum() for w in range(1, 9)]
    assert misses == sorted(misses, reverse=True)


def test_vli_intervals_have_phase_ids(runner):
    intervals, _ = runner.vli_intervals(SPEC, "nolimit-self")
    assert intervals.num_phases >= 2
    assert intervals.cpis is not None


def test_trace_metrics_shared_between_partitions(runner):
    tm1 = runner.trace_metrics(SPEC, "train")
    tm2 = runner.trace_metrics(SPEC, "train")
    assert tm1 is tm2


def test_partitions_conserve_totals(runner):
    """Different partitions of one run attribute the same totals."""
    fixed, fprof = runner.fixed_intervals(SPEC, 10_000)
    vli, vprof = runner.vli_intervals(SPEC, "nolimit-self")
    assert fixed.total_instructions == vli.total_instructions
    assert fprof.accesses.sum() == vprof.accesses.sum()
    assert fprof.hits.sum(axis=0).tolist() == vprof.hits.sum(axis=0).tolist()
    assert fixed.branch_mispredicts.sum() == vli.branch_mispredicts.sum()
    assert fixed.cycles.sum() == pytest.approx(vli.cycles.sum())
