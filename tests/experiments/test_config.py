"""Unit tests for experiment configuration."""

import pytest

from repro.experiments.config import PAPER, SCALED


def test_scaled_is_one_thousandth_of_paper():
    assert PAPER.ilower == SCALED.ilower * 1000
    assert PAPER.max_limit == SCALED.max_limit * 1000
    assert PAPER.bbv_interval == SCALED.bbv_interval * 1000
    for label in PAPER.fixed_intervals:
        assert PAPER.fixed_intervals[label] == SCALED.fixed_intervals[label] * 1000


def test_paper_values_match_publication():
    assert PAPER.ilower == 10_000_000
    assert PAPER.max_limit == 200_000_000
    assert PAPER.fixed_intervals == {
        "SP_1M": 1_000_000,
        "SP_10M": 10_000_000,
        "SP_100M": 100_000_000,
    }
    # k_max per interval size, as in Section 6.2
    assert PAPER.fixed_k_max == {"SP_1M": 30, "SP_10M": 30, "SP_100M": 10}
    assert PAPER.coverages == (0.95, 0.99, 1.0)


def test_k_max_consistent_across_scales():
    assert PAPER.fixed_k_max == SCALED.fixed_k_max
    assert PAPER.bbv_k_max == SCALED.bbv_k_max


def test_simpoint_options_helper():
    opts = SCALED.simpoint_options(30)
    assert opts.k_max == 30
    assert opts.dims == 15
