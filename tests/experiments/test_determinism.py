"""End-to-end determinism: two independent runners produce identical
experiment rows (no hidden global state anywhere in the pipeline)."""

from repro.experiments import fig7, fig9
from repro.experiments.runner import Runner

SPECS = ["vortex/one"]


def test_behavior_tables_reproducible():
    a = fig7.run(Runner(), SPECS).render()
    b = fig7.run(Runner(), SPECS).render()
    assert a == b


def test_cov_table_reproducible():
    a = fig9.run(Runner(), SPECS).render()
    b = fig9.run(Runner(), SPECS).render()
    assert a == b
