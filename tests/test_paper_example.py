"""The paper's worked example (Figures 1/2 and Section 5.1), end to end.

The code of Figure 1::

    Proc foo() { loop { if (cond) call X; else call Y; } call X; }
    Proc X()   { call Z; }

Figure 2's graph and the Section 5.1 walkthrough make three points this
test suite verifies on our pipeline:

1. **caller-context differentiation** — X called from inside the loop and
   from after it yields *two distinct edges* (loop-body -> X and
   foo-body -> X), which is what lets the algorithm separate behaviors
   that a plain call graph would merge;
2. **head/body splitting** — the loop's entry-to-exit behavior (head) and
   per-iteration behavior (body) are tracked separately;
3. **the selection outcome** — when each iteration's work is bimodal
   (cond picks the expensive X or the cheap Y), the per-iteration edge
   has a high hierarchical-count CoV and is rejected, while the per-entry
   edge aggregates many iterations, has a low CoV, and is selected:
   "a better place to put the software marker is at the edge foo to
   loop-head".
"""

import numpy as np
import pytest

from repro.callloop import (
    SelectionParams,
    build_call_loop_graph,
    select_markers,
)
from repro.callloop.graph import Node, NodeKind
from repro.ir import ProgramBuilder
from repro.ir.program import ProgramInput


@pytest.fixture(scope="module")
def example():
    b = ProgramBuilder("fig1", source_file="fig1.c")
    with b.proc("main"):
        with b.loop("runs", trips=40):  # repeat foo so edges get samples
            b.call("foo")
    with b.proc("foo"):
        with b.loop("loop", trips=50):
            with b.if_(0.5):
                b.call("x")
            with b.else_():
                b.call("y")
        b.call("x")
    with b.proc("x"):
        b.code(20, loads=4)
        b.call("z")
    with b.proc("y"):
        b.code(4)
    with b.proc("z"):
        b.code(60, loads=10)
    program = b.build()
    inp = ProgramInput("example", {}, seed=13)
    graph = build_call_loop_graph(program, [inp])
    return program, graph


def node(kind, proc, uid="", label=""):
    return Node(kind, proc, uid, label)


def find_edge(graph, src_str, dst_str):
    for e in graph.edges:
        if str(e.src) == src_str and str(e.dst) == dst_str:
            return e
    return None


class TestFigure2Structure:
    def test_x_has_two_context_edges(self, example):
        _, graph = example
        loop_edge = find_edge(graph, "foo:loop[loop-body]", "x[head]")
        direct_edge = find_edge(graph, "foo[body]", "x[head]")
        assert loop_edge is not None
        assert direct_edge is not None
        # the loop calls X ~half the iterations; the direct call is once
        # per foo invocation
        assert direct_edge.count == 40
        assert 40 * 50 * 0.3 < loop_edge.count < 40 * 50 * 0.7

    def test_y_called_only_from_loop(self, example):
        _, graph = example
        assert find_edge(graph, "foo:loop[loop-body]", "y[head]") is not None
        assert find_edge(graph, "foo[body]", "y[head]") is None

    def test_loop_head_body_split(self, example):
        _, graph = example
        entry = find_edge(graph, "foo[body]", "foo:loop[loop-head]")
        iteration = find_edge(graph, "foo:loop[loop-head]", "foo:loop[loop-body]")
        assert entry is not None and iteration is not None
        assert entry.count == 40  # one entry per foo call
        assert iteration.count == 40 * 50  # one per iteration
        # entry spans all iterations: its average is ~50x an iteration's
        assert entry.avg == pytest.approx(iteration.avg * 50, rel=0.02)

    def test_z_reached_through_x(self, example):
        _, graph = example
        z_edge = find_edge(graph, "x[body]", "z[head]")
        assert z_edge is not None
        x_in = (
            find_edge(graph, "foo:loop[loop-body]", "x[head]").count
            + find_edge(graph, "foo[body]", "x[head]").count
        )
        assert z_edge.count == x_in  # every X activation calls Z once


class TestSection51Walkthrough:
    def test_iteration_edge_variable_entry_edge_stable(self, example):
        _, graph = example
        entry = find_edge(graph, "foo[body]", "foo:loop[loop-head]")
        iteration = find_edge(graph, "foo:loop[loop-head]", "foo:loop[loop-body]")
        # per-iteration work is bimodal (X: ~90 instr incl. Z, Y: ~8)
        assert iteration.cov > 0.5
        # per-entry work averages 50 draws: far more stable
        assert entry.cov < 0.1

    def test_selection_marks_loop_entry_not_iterations(self, example):
        _, graph = example
        iteration = find_edge(graph, "foo:loop[loop-head]", "foo:loop[loop-body]")
        # ilower below the iteration average, so both edges are size-eligible
        params = SelectionParams(ilower=iteration.avg * 0.8)
        result = select_markers(graph, params)
        keys = {(str(m.src), str(m.dst)) for m in result.markers}
        assert ("foo[body]", "foo:loop[loop-head]") in keys, (
            "the loop-entry edge should be marked"
        )
        assert ("foo:loop[loop-head]", "foo:loop[loop-body]") not in keys, (
            "the per-iteration edge has too much variation to mark"
        )

    def test_ilower_prunes_small_behaviors(self, example):
        _, graph = example
        # with ilower above per-call X work but below per-entry loop work,
        # the X edges disappear from the candidate list (pass 1)
        entry = find_edge(graph, "foo[body]", "foo:loop[loop-head]")
        x_edge = find_edge(graph, "foo[body]", "x[head]")
        params = SelectionParams(ilower=(x_edge.avg + entry.avg) / 2)
        result = select_markers(graph, params)
        candidate_keys = {(str(e.src), str(e.dst)) for e in result.candidates}
        assert ("foo[body]", "x[head]") not in candidate_keys
        assert ("foo[body]", "foo:loop[loop-head]") in candidate_keys
