"""Unit tests for time-varying series with marker overlays."""

import numpy as np
import pytest

from repro.analysis.timevarying import TimeVaryingSeries, time_varying_series
from repro.callloop import SelectionParams, build_call_loop_graph, select_markers
from repro.callloop.crossbinary import MarkerFiring
from repro.engine import Machine, record_trace


@pytest.fixture
def toy_series(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input).run())
    graph = build_call_loop_graph(toy_program, [toy_input])
    markers = select_markers(graph, SelectionParams(ilower=500)).markers
    return time_varying_series(
        toy_program, toy_input, trace, markers, interval_length=500
    )


def test_series_lengths_consistent(toy_series):
    assert len(toy_series.cpis) == len(toy_series.start_ts)
    assert len(toy_series.miss_rates) == len(toy_series.cpis)


def test_marker_positions_sorted(toy_series):
    positions = toy_series.marker_positions()
    assert (np.diff(positions) >= 0).all()


def test_alignment_in_unit_range(toy_series):
    a = toy_series.transition_alignment()
    assert 0.0 <= a <= 1.0


def test_alignment_empty_cases():
    s = TimeVaryingSeries(
        program="p",
        variant="base",
        interval_length=100,
        start_ts=np.array([0, 100]),
        cpis=np.array([1.0, 2.0]),
        miss_rates=np.array([0.1, 0.2]),
        firings=[],
    )
    assert s.transition_alignment() == 0.0


def test_alignment_perfect_when_markers_on_steps():
    n = 40
    start_ts = np.arange(n) * 100
    miss = np.array([0.1] * (n // 2) + [0.9] * (n // 2))
    s = TimeVaryingSeries(
        program="p",
        variant="base",
        interval_length=100,
        start_ts=start_ts,
        cpis=np.ones(n),
        miss_rates=miss,
        firings=[MarkerFiring(1, (n // 2) * 100)],
    )
    assert s.transition_alignment(top_fraction=0.03) == 1.0


def test_alignment_zero_when_markers_far():
    n = 40
    start_ts = np.arange(n) * 100
    miss = np.array([0.1] * (n // 2) + [0.9] * (n // 2))
    s = TimeVaryingSeries(
        program="p",
        variant="base",
        interval_length=100,
        start_ts=start_ts,
        cpis=np.ones(n),
        miss_rates=miss,
        firings=[MarkerFiring(1, 0)],
    )
    assert s.transition_alignment(top_fraction=0.03) == 0.0
