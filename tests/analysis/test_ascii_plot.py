"""Unit tests for ASCII time-series rendering."""

import numpy as np

from repro.analysis.ascii_plot import marker_row, render_series, sparkline
from repro.analysis.timevarying import TimeVaryingSeries
from repro.callloop.crossbinary import MarkerFiring


def series(n=50, firings=(1000, 2000)):
    return TimeVaryingSeries(
        program="p",
        variant="base",
        interval_length=100,
        start_ts=np.arange(n) * 100,
        cpis=np.linspace(1, 2, n),
        miss_rates=np.linspace(0, 1, n),
        firings=[MarkerFiring(1, t) for t in firings],
    )


class TestSparkline:
    def test_length_capped_at_width(self):
        assert len(sparkline(np.arange(1000), width=80)) == 80

    def test_short_series_uncompressed(self):
        assert len(sparkline([1, 2, 3], width=80)) == 3

    def test_monotone_values_monotone_blocks(self):
        line = sparkline(np.arange(8), width=8)
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestMarkerRow:
    def test_markers_positioned(self):
        row = marker_row(series(firings=(0, 2500)), width=50)
        assert row[0] == "^"
        assert "^" in row[20:30]
        assert len(row) == 50

    def test_no_firings(self):
        row = marker_row(series(firings=()), width=50)
        assert set(row) == {" "}


def test_render_series_contains_panels():
    text = render_series(series(), width=60)
    lines = text.splitlines()
    assert len(lines) == 4
    assert "CPI" in lines[1]
    assert "DL1" in lines[2]
    assert "^" in lines[3]
