"""Unit tests for 3D projections and cluster tightness."""

import numpy as np
import pytest

from repro.analysis.projection3d import ProjectionData, cluster_tightness, project_3d
from repro.intervals.base import IntervalSet


def make_set_with_bbvs(bbvs, lengths=None):
    n = len(bbvs)
    if lengths is None:
        lengths = np.full(n, 100, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    start_ts = np.concatenate(([0], np.cumsum(lengths)[:-1])).astype(np.int64)
    s = IntervalSet(
        "p", "fixed", np.arange(n + 1, dtype=np.int64), start_ts, lengths
    )
    s.bbvs = np.asarray(bbvs, dtype=np.float64)
    return s


def clustered_bbvs(k=3, n=30, blocks=20, noise=0.001, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.1, 1, size=(k, blocks))
    rows = [base[i % k] * 100 + rng.normal(0, noise, blocks) for i in range(n)]
    return np.abs(np.vstack(rows))


def test_projection_shape():
    s = make_set_with_bbvs(clustered_bbvs())
    data = project_3d(s)
    assert data.points.shape == (30, 3)
    assert len(data) == 30
    assert data.weights.sum() == pytest.approx(1.0)


def test_projection_requires_bbvs():
    s = make_set_with_bbvs(clustered_bbvs())
    s.bbvs = None
    with pytest.raises(ValueError):
        project_3d(s)


def test_tight_clusters_score_near_zero():
    s = make_set_with_bbvs(clustered_bbvs(noise=1e-6))
    score = cluster_tightness(project_3d(s), k=4)
    assert score < 1e-6


def test_diffuse_points_score_higher():
    rng = np.random.default_rng(1)
    diffuse = rng.uniform(0, 100, size=(60, 20))
    tight = clustered_bbvs(n=60, noise=1e-6)
    diffuse_score = cluster_tightness(project_3d(make_set_with_bbvs(diffuse)), k=4)
    tight_score = cluster_tightness(project_3d(make_set_with_bbvs(tight)), k=4)
    assert diffuse_score > 100 * max(tight_score, 1e-12)


def test_few_points_score_zero():
    s = make_set_with_bbvs(clustered_bbvs(n=5))
    assert cluster_tightness(project_3d(s), k=8) == 0.0


def test_identical_points_score_zero():
    s = make_set_with_bbvs(np.ones((20, 10)))
    assert cluster_tightness(project_3d(s), k=3) == 0.0


def test_weighted_mode_runs():
    s = make_set_with_bbvs(clustered_bbvs(), lengths=np.arange(1, 31) * 10)
    score = cluster_tightness(project_3d(s), k=4, weighted=True)
    assert 0.0 <= score <= 1.0


def test_same_projection_for_both_partitions():
    """Figures 5/6 use one projection matrix for both point sets."""
    bbvs = clustered_bbvs(blocks=25)
    a = project_3d(make_set_with_bbvs(bbvs), seed=7)
    b = project_3d(make_set_with_bbvs(bbvs * 2), seed=7)
    # same directions: normalized rows project identically
    assert np.allclose(a.points, b.points)
