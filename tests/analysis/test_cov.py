"""Unit tests for the per-phase CoV metric."""

import numpy as np
import pytest

from repro.analysis.cov import phase_cov, whole_program_cov
from repro.intervals.base import IntervalSet


def make_set(lengths, phase_ids, cpis):
    lengths = np.asarray(lengths, dtype=np.int64)
    start_ts = np.concatenate(([0], np.cumsum(lengths)[:-1])).astype(np.int64)
    row_bounds = np.arange(len(lengths) + 1, dtype=np.int64)
    s = IntervalSet("p", "vli", row_bounds, start_ts, lengths,
                    np.asarray(phase_ids, dtype=np.int64))
    s.cpis = np.asarray(cpis, dtype=np.float64)
    return s


def test_perfectly_homogeneous_phases():
    s = make_set([10, 10, 10, 10], [1, 2, 1, 2], [2.0, 5.0, 2.0, 5.0])
    cov = phase_cov(s)
    assert cov.overall == pytest.approx(0.0)
    assert cov.num_phases == 2
    assert cov.num_intervals == 4


def test_heterogeneous_phase_detected():
    s = make_set([10, 10], [1, 1], [1.0, 3.0])
    cov = phase_cov(s)
    # mean 2, std 1 -> CoV 0.5
    assert cov.per_phase[1] == pytest.approx(0.5)
    assert cov.overall == pytest.approx(0.5)


def test_weighting_by_instructions():
    # the long interval dominates the phase mean
    s = make_set([90, 10], [1, 1], [1.0, 2.0])
    cov = phase_cov(s)
    mean = 0.9 * 1.0 + 0.1 * 2.0
    var = 0.9 * (1.0 - mean) ** 2 + 0.1 * (2.0 - mean) ** 2
    assert cov.per_phase[1] == pytest.approx(np.sqrt(var) / mean)


def test_overall_weighted_by_phase_share():
    s = make_set([80, 80, 20, 20], [1, 1, 2, 2], [1.0, 1.0, 1.0, 3.0])
    cov = phase_cov(s)
    assert cov.per_phase[1] == 0.0
    assert cov.overall == pytest.approx(cov.per_phase[2] * 0.2)
    assert cov.phase_weights[1] == pytest.approx(0.8)


def test_n_phases_n_intervals_trivially_zero():
    """The degenerate case the paper warns about: every interval its own
    phase gives CoV 0 — which is why Fig. 8 reports phase counts."""
    s = make_set([10, 10, 10], [1, 2, 3], [1.0, 5.0, 9.0])
    assert phase_cov(s).overall == 0.0


def test_whole_program_cov():
    s = make_set([10, 10], [1, 2], [1.0, 3.0])
    assert whole_program_cov(s) == pytest.approx(0.5)
    # classification into 2 pure phases removes all variation
    assert phase_cov(s).overall == 0.0


def test_explicit_values_argument():
    s = make_set([10, 10], [1, 1], [1.0, 1.0])
    miss_rates = np.array([0.1, 0.3])
    cov = phase_cov(s, miss_rates)
    assert cov.per_phase[1] == pytest.approx(0.5)


def test_requires_metrics():
    s = make_set([10], [1], [1.0])
    s.cpis = None
    with pytest.raises(ValueError):
        phase_cov(s)
    with pytest.raises(ValueError):
        whole_program_cov(s)
