"""Unit tests for approach summaries."""

import numpy as np

from repro.analysis.classify import summarize
from repro.intervals.base import IntervalSet


def test_summarize_fields():
    lengths = np.array([100, 300, 100, 300], dtype=np.int64)
    start_ts = np.concatenate(([0], np.cumsum(lengths)[:-1])).astype(np.int64)
    s = IntervalSet(
        "gzip",
        "vli",
        np.arange(5, dtype=np.int64),
        start_ts,
        lengths,
        np.array([1, 2, 1, 2], dtype=np.int64),
    )
    s.cpis = np.array([1.0, 2.0, 1.0, 2.0])
    summary = summarize("gzip/graphic", "no limit self", s)
    assert summary.workload == "gzip/graphic"
    assert summary.approach == "no limit self"
    assert summary.num_intervals == 4
    assert summary.num_phases == 2
    assert summary.avg_interval_length == 200.0
    assert summary.avg_interval_millions == 200.0 / 1e6
    assert summary.cov_cpi == 0.0
