"""Unit tests for JSON serialization helpers."""

import dataclasses
from enum import Enum

import numpy as np
import pytest

from repro.util.serialization import dump_json, load_json, to_jsonable


class Color(Enum):
    RED = 1


@dataclasses.dataclass
class Point:
    x: int
    y: float


def test_scalars():
    assert to_jsonable(5) == 5
    assert to_jsonable("s") == "s"
    assert to_jsonable(None) is None
    assert to_jsonable(True) is True


def test_numpy():
    assert to_jsonable(np.int64(5)) == 5
    assert to_jsonable(np.float64(1.5)) == 1.5
    assert to_jsonable(np.array([1, 2])) == [1, 2]


def test_enum():
    assert to_jsonable(Color.RED) == "RED"


def test_dataclass():
    assert to_jsonable(Point(1, 2.5)) == {"x": 1, "y": 2.5}


def test_nested():
    data = {"points": [Point(0, 0.0), Point(1, 1.0)], "tags": {"a", }}
    out = to_jsonable(data)
    assert out["points"][1] == {"x": 1, "y": 1.0}
    assert out["tags"] == ["a"]


def test_unserializable_rejected():
    with pytest.raises(TypeError):
        to_jsonable(object())


def test_roundtrip(tmp_path):
    path = tmp_path / "out.json"
    dump_json({"a": [1, 2, 3], "b": Point(4, 5.0)}, path)
    back = load_json(path)
    assert back == {"a": [1, 2, 3], "b": {"x": 4, "y": 5.0}}
