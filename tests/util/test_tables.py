"""Unit tests for table rendering and mean helpers."""

import math

import pytest

from repro.util.tables import (
    Table,
    arithmetic_mean,
    format_float,
    format_int,
    geometric_mean,
    weighted_mean,
)


class TestFormat:
    def test_float(self):
        assert format_float(1.23456, 3) == "1.235"
        assert format_float(float("nan")) == "nan"
        assert format_float(float("inf")) == "inf"
        assert format_float(float("-inf")) == "-inf"
        assert format_float(None) == "-"

    def test_int(self):
        assert format_int(1234567) == "1,234,567"
        assert format_int(None) == "-"


class TestTable:
    def test_render_contains_everything(self):
        t = Table("My Title", ["name", "value", "count"])
        t.add_row(["x", 1.5, 10])
        t.add_row(["y", None, 2000])
        text = t.render()
        assert "My Title" in text
        assert "1.500" in text
        assert "2,000" in text
        assert "-" in text

    def test_row_width_checked(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_bool_cells(self):
        t = Table("t", ["a"])
        t.add_row([True])
        t.add_row([False])
        assert t.column("a") == ["yes", "no"]

    def test_section_rows_excluded_from_column(self):
        t = Table("t", ["a", "b"])
        t.add_row([1, 2])
        t.add_section("part two")
        t.add_row([3, 4])
        assert t.column("a") == ["1", "3"]
        assert "part two" in t.render()

    def test_str_same_as_render(self):
        t = Table("t", ["a"])
        t.add_row([1])
        assert str(t) == t.render()


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1, 2, 3]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)  # zeros skipped

    def test_weighted(self):
        assert weighted_mean([1, 3], [1, 1]) == 2.0
        assert weighted_mean([1, 3], [3, 1]) == 1.5
        assert weighted_mean([1, 3], [0, 0]) == 0.0
