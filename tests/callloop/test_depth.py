"""Unit tests for depth estimation and processing order."""

from repro.callloop import build_call_loop_graph
from repro.callloop.depth import estimate_max_depth, processing_order
from repro.callloop.graph import CallLoopGraph, Node, NodeKind, ROOT


def n(name, kind=NodeKind.PROC_HEAD):
    return Node(kind, name)


def chain_graph():
    g = CallLoopGraph("p")
    g.observe(ROOT, n("a"), 1)
    g.observe(n("a"), n("b"), 1)
    g.observe(n("b"), n("c"), 1)
    return g


def diamond_graph():
    # root -> a -> c and root -> b -> c where b path is longer via extra hop
    g = CallLoopGraph("p")
    g.observe(ROOT, n("a"), 1)
    g.observe(ROOT, n("b"), 1)
    g.observe(n("b"), n("x"), 1)
    g.observe(n("x"), n("c"), 1)
    g.observe(n("a"), n("c"), 1)
    return g


def cyclic_graph():
    g = CallLoopGraph("p")
    g.observe(ROOT, n("a"), 1)
    g.observe(n("a"), n("b"), 1)
    g.observe(n("b"), n("a"), 1)  # recursion cycle
    return g


def test_chain_depths():
    depth = estimate_max_depth(chain_graph())
    assert depth[ROOT] == 0
    assert depth[n("a")] == 1
    assert depth[n("c")] == 3


def test_longest_path_wins():
    depth = estimate_max_depth(diamond_graph())
    assert depth[n("c")] == 3  # via b -> x, not the shorter a path


def test_cycle_terminates():
    depth = estimate_max_depth(cyclic_graph())
    assert depth[n("a")] >= 1
    assert depth[n("b")] == depth[n("a")] + 1 or depth[n("a")] == depth[n("b")] + 1


def test_processing_order_children_first():
    order = processing_order(chain_graph())
    assert order.index(n("c")) < order.index(n("b")) < order.index(n("a"))


def test_ties_broken_by_out_degree():
    g = CallLoopGraph("p")
    g.observe(ROOT, n("leaf"), 1)
    g.observe(ROOT, n("fan"), 1)
    g.observe(n("fan"), n("x"), 1)
    g.observe(n("fan"), n("y"), 1)
    order = processing_order(g)
    # leaf (out-degree 0) precedes fan (out-degree 2) at equal depth
    assert order.index(n("leaf")) < order.index(n("fan"))


def test_real_graph_order_leaves_first(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    order = processing_order(graph)
    depth = estimate_max_depth(graph)
    depths = [depth[node] for node in order]
    assert depths == sorted(depths, reverse=True)
    assert order[-1] in (ROOT,) or depth[order[-1]] == 0
