"""Invariant tests for the shadow-stack trace walker."""

from collections import defaultdict

import pytest

from repro.callloop.graph import NodeKind, NodeTable
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.engine import Machine, record_trace
from repro.ir import ProgramBuilder, NormalTrips
from repro.ir.program import ProgramInput


class SpanRecorder(ContextHandler):
    """Records every open/close and checks pairing on the fly."""

    def __init__(self):
        self.open_spans = defaultdict(list)  # (src,dst) -> [t_open]
        self.closed = []  # (src, dst, t_open, t_close)
        self.blocks = []

    def on_edge_open(self, src, dst, t, source):
        self.open_spans[(src, dst)].append(t)

    def on_edge_close(self, src, dst, t_open, t_close, source):
        stack = self.open_spans[(src, dst)]
        assert stack, f"close without open on edge {(src, dst)}"
        expected = stack.pop()
        assert expected == t_open, "spans must close LIFO per edge"
        assert t_close >= t_open
        self.closed.append((src, dst, t_open, t_close))

    def on_block(self, block_id, size, t):
        self.blocks.append((block_id, size, t))


def walk(program, inp):
    trace = record_trace(Machine(program, inp).run())
    table = NodeTable(program)
    rec = SpanRecorder()
    total = ContextWalker(program, table).walk(trace, rec)
    return trace, table, rec, total


def test_all_spans_closed(toy_program, toy_input):
    _, _, rec, _ = walk(toy_program, toy_input)
    assert all(not spans for spans in rec.open_spans.values())


def test_total_matches_trace(toy_program, toy_input):
    trace, _, rec, total = walk(toy_program, toy_input)
    assert total == trace.total_instructions


def test_root_edge_spans_whole_run(toy_program, toy_input):
    trace, table, rec, total = walk(toy_program, toy_input)
    head_main = table.proc_head["main"]
    spans = [s for s in rec.closed if s[0] == 0 and s[1] == head_main]
    assert spans == [(0, head_main, 0, total)]


def test_block_t_monotone(toy_program, toy_input):
    _, _, rec, _ = walk(toy_program, toy_input)
    ts = [t for (_, _, t) in rec.blocks]
    assert ts == sorted(ts)


def test_loop_iterations_counted(loop_only_program):
    inp = ProgramInput("i", seed=3)
    trace, table, rec, _ = walk(loop_only_program, inp)
    # loop "t" runs 30 times; each iteration of t enters loops i and j once
    by_edge = defaultdict(int)
    for src, dst, _, _ in rec.closed:
        by_edge[(src, dst)] += 1
    heads = {
        table.node(k).label: (table.loop_head[h], table.loop_body[h])
        for h, k in zip(table.loop_head, table.loop_head.values())
    }
    # find loop t's head->body edge: 30 iterations
    label_of = {}
    for header, head_id in table.loop_head.items():
        label_of[table.node(head_id).label] = (head_id, table.loop_body[header])
    t_head, t_body = label_of["t"]
    i_head, i_body = label_of["i"]
    assert by_edge[(t_head, t_body)] == 30
    # loop i entered once per t iteration
    assert by_edge[(t_body, i_head)] == 30
    # ~100 iterations per entry, 30 entries
    assert 2500 < by_edge[(i_head, i_body)] < 3500


def test_hierarchical_counts_nest(toy_program, toy_input):
    """A parent edge's span covers the sum of its children's spans."""
    trace, table, rec, total = walk(toy_program, toy_input)
    head_main = table.proc_head["main"]
    body_main = table.proc_body["main"]
    # main body's hierarchical count == whole program
    spans = [s for s in rec.closed if (s[0], s[1]) == (head_main, body_main)]
    assert len(spans) == 1
    assert spans[0][3] - spans[0][2] == total


def test_call_edge_counts(toy_program, toy_input):
    trace, table, rec, _ = walk(toy_program, toy_input)
    work_head = table.proc_head["work"]
    spans = [s for s in rec.closed if s[1] == work_head]
    assert len(spans) == 20  # called once per outer-loop iteration


def test_recursion_head_body_semantics(recursive_program):
    inp = ProgramInput("i", seed=11)
    trace, table, rec, _ = walk(recursive_program, inp)
    fib_head = table.proc_head["fib"]
    fib_body = table.proc_body["fib"]
    head_spans = [s for s in rec.closed if s[1] == fib_head]
    body_spans = [s for s in rec.closed if (s[0], s[1]) == (fib_head, fib_body)]
    # top-level called 10 times; recursion adds body activations only
    assert len(head_spans) == 10
    assert len(body_spans) >= 10
    # head spans cover their recursive body spans
    assert sum(s[3] - s[2] for s in body_spans) >= sum(
        s[3] - s[2] for s in head_spans
    )


def test_sibling_loops_pop_correctly():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("first", trips=3):
            b.code(5)
        with b.loop("second", trips=4):
            b.code(5)
    prog = b.build()
    trace, table, rec, _ = walk(prog, ProgramInput("i"))
    counts = defaultdict(int)
    for src, dst, _, _ in rec.closed:
        counts[(table.node(src).label, table.node(dst).label)] += 1
    assert counts[("first", "first")] == 3  # head->body iterations
    assert counts[("second", "second")] == 4
    assert counts[("main", "first")] == 1  # one entry each
    assert counts[("main", "second")] == 1


def test_loop_followed_by_call_pops_loop():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l", trips=2):
            b.code(3)
        b.call("f")
    with b.proc("f"):
        b.code(2)
    prog = b.build()
    trace, table, rec, _ = walk(prog, ProgramInput("i"))
    # the call edge must come from main's *body*, not from inside the loop
    f_head = table.proc_head["f"]
    body_main = table.proc_body["main"]
    spans = [s for s in rec.closed if s[1] == f_head]
    assert spans[0][0] == body_main


def test_call_inside_loop_attributed_to_loop_body(toy_program, toy_input):
    trace, table, rec, _ = walk(toy_program, toy_input)
    work_head = table.proc_head["work"]
    spans = [s for s in rec.closed if s[1] == work_head]
    src_kinds = {table.node(s[0]).kind for s in spans}
    assert src_kinds == {NodeKind.LOOP_BODY}
