"""Unit tests for the two-pass marker selection algorithm."""

import pytest

from repro.callloop import SelectionParams, build_call_loop_graph, select_markers
from repro.callloop.graph import CallLoopGraph, Node, NodeKind, ROOT
from repro.callloop.selection import (
    _cov_threshold,
    collect_candidates,
    cov_threshold_stats,
)
from repro.ir.program import ProgramInput


def node(name, kind=NodeKind.PROC_HEAD):
    return Node(kind, name)


def make_graph(edges):
    """edges: list of (src, dst, [hierarchical counts])."""
    g = CallLoopGraph("p")
    for src, dst, values in edges:
        for v in values:
            g.observe(src, dst, v)
    return g


class TestPass1:
    def test_ilower_prunes_small_edges(self):
        g = make_graph(
            [
                (ROOT, node("main"), [10_000]),
                (node("main"), node("big"), [5_000, 5_100]),
                (node("main"), node("small"), [50, 60]),
            ]
        )
        _, cands = collect_candidates(g, SelectionParams(ilower=1000))
        keys = {(e.src.proc, e.dst.proc) for e in cands}
        assert ("main", "big") in keys
        assert ("main", "small") not in keys

    def test_root_edges_excluded(self):
        g = make_graph([(ROOT, node("main"), [10_000])])
        _, cands = collect_candidates(g, SelectionParams(ilower=10))
        assert cands == []

    def test_procedures_only_excludes_loops(self, loop_only_program):
        graph = build_call_loop_graph(
            loop_only_program, [ProgramInput("i", seed=3)]
        )
        _, all_cands = collect_candidates(graph, SelectionParams(ilower=100))
        _, proc_cands = collect_candidates(
            graph, SelectionParams(ilower=100, procedures_only=True)
        )
        assert any(e.dst.kind.is_loop for e in all_cands)
        assert all(not e.dst.kind.is_loop for e in proc_cands)

    def test_invalid_ilower(self):
        with pytest.raises(ValueError):
            SelectionParams(ilower=0)


class TestThreshold:
    def test_stats_of_empty(self):
        assert cov_threshold_stats([]) == (0.0, 0.0)

    def test_linear_scaling(self):
        # at ilower the threshold is base; at avg_hi it's base+spread
        assert _cov_threshold(100, 100, 1000, 0.1, 0.2) == pytest.approx(0.1)
        assert _cov_threshold(1000, 100, 1000, 0.1, 0.2) == pytest.approx(0.3)
        mid = _cov_threshold(550, 100, 1000, 0.1, 0.2)
        assert 0.1 < mid < 0.3

    def test_clamped_above_hi(self):
        assert _cov_threshold(5000, 100, 1000, 0.1, 0.2) == pytest.approx(0.3)

    def test_degenerate_range(self):
        assert _cov_threshold(100, 100, 100, 0.1, 0.2) == pytest.approx(0.1)


class TestNonFiniteCov:
    """NaN/inf CoV edges must not poison the adaptive threshold
    (the old ``cov_threshold_stats`` averaged them straight in)."""

    def _poisoned_graph(self):
        from repro.callloop.stats import RunningStats

        g = make_graph(
            [
                (ROOT, node("main"), [40_000]),
                (node("main"), node("stable"), [5_000] * 4),
                (node("main"), node("steady"), [6_000] * 4),
                (node("main"), node("flat"), [7_000] * 4),
            ]
        )
        # candidate edge whose variance accumulator overflowed: cov = inf
        e = g.edge(node("main"), node("spiky"))
        e.stats = RunningStats(count=5, mean=2e4, m2=float("inf"), max_value=2e4)
        return g

    def test_infinite_cov_does_not_poison_stats(self):
        g = self._poisoned_graph()
        _, cands = collect_candidates(g, SelectionParams(ilower=1000))
        assert any(e.cov == float("inf") for e in cands)
        base, spread = cov_threshold_stats(cands)
        assert base == pytest.approx(0.0)
        assert spread == pytest.approx(0.0)

    def test_nan_cov_filtered_from_stats(self):
        from types import SimpleNamespace

        edges = [
            SimpleNamespace(cov=c)
            for c in (0.1, float("nan"), 0.3, float("inf"))
        ]
        base, spread = cov_threshold_stats(edges)
        assert base == pytest.approx(0.2)
        assert spread == pytest.approx(0.1)

    def test_all_non_finite_covs_give_zero_stats(self):
        from types import SimpleNamespace

        edges = [SimpleNamespace(cov=float("nan")), SimpleNamespace(cov=float("inf"))]
        assert cov_threshold_stats(edges) == (0.0, 0.0)

    def test_selection_survives_poisoned_edge(self):
        g = self._poisoned_graph()
        result = select_markers(g, SelectionParams(ilower=1000))
        dsts = {m.dst.proc for m in result.markers}
        assert "stable" in dsts  # stable edges still selected
        assert "spiky" not in dsts  # inf cov can never pass a finite threshold


class TestSelection:
    def test_stable_edge_selected_unstable_rejected(self):
        g = make_graph(
            [
                (ROOT, node("main"), [40_000]),
                # stable edges: CoV 0 (these set a low threshold base)
                (node("main"), node("stable"), [5_000] * 4),
                (node("main"), node("steady"), [6_000] * 4),
                (node("main"), node("flat"), [7_000] * 4),
                # wildly unstable and near ilower (tightest threshold)
                (node("main"), node("wild"), [1_000, 2_600, 1_200, 2_400]),
            ]
        )
        result = select_markers(g, SelectionParams(ilower=1000))
        dsts = {m.dst.proc for m in result.markers}
        assert "stable" in dsts
        assert "wild" not in dsts

    def test_marker_ids_dense_from_one(self, toy_program, toy_input):
        graph = build_call_loop_graph(toy_program, [toy_input])
        result = select_markers(graph, SelectionParams(ilower=500))
        ids = [m.marker_id for m in result.markers]
        assert ids == list(range(1, len(ids) + 1))

    def test_markers_meet_ilower(self, toy_program, toy_input):
        graph = build_call_loop_graph(toy_program, [toy_input])
        result = select_markers(graph, SelectionParams(ilower=500))
        assert result.markers
        assert all(m.avg_interval >= 500 for m in result.markers)

    def test_deterministic(self, toy_program, toy_input):
        graph = build_call_loop_graph(toy_program, [toy_input])
        a = select_markers(graph, SelectionParams(ilower=500))
        b = select_markers(graph, SelectionParams(ilower=500))
        assert [m.edge_key for m in a.markers] == [m.edge_key for m in b.markers]

    def test_larger_ilower_fewer_or_equal_markers(self, toy_program, toy_input):
        graph = build_call_loop_graph(toy_program, [toy_input])
        small = select_markers(graph, SelectionParams(ilower=100))
        large = select_markers(graph, SelectionParams(ilower=50_000))
        assert len(large.candidates) <= len(small.candidates)

    def test_empty_graph(self):
        g = CallLoopGraph("p")
        result = select_markers(g, SelectionParams(ilower=100))
        assert len(result.markers) == 0

    def test_loop_markers_found_in_monolithic_program(self, loop_only_program):
        """The 'all code in main' case: only loops can mark phases."""
        graph = build_call_loop_graph(loop_only_program, [ProgramInput("i", seed=3)])
        result = select_markers(graph, SelectionParams(ilower=400))
        assert any(m.dst.kind.is_loop for m in result.markers)
        proc_only = select_markers(
            graph, SelectionParams(ilower=400, procedures_only=True)
        )
        # Procedure-only analysis degenerates to the trivial whole-program
        # marker (the paper's vpr case): every marker spans ~all execution.
        total = graph.total_instructions
        assert all(m.avg_interval > 0.9 * total for m in proc_only.markers)
