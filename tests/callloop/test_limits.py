"""Unit tests for the max-limit (SimPoint) selection variant."""

import pytest

from repro.callloop import LimitParams, build_call_loop_graph, select_markers_with_limit
from repro.callloop.graph import CallLoopGraph, Node, NodeKind, ROOT
from repro.callloop.limits import _merge_iteration_count
from repro.ir.program import ProgramInput


def node(name, kind=NodeKind.PROC_HEAD):
    return Node(kind, name)


class TestMergeIterationCount:
    def test_even_divisor_preferred(self):
        # 100 iters of 100 instructions each; ilower 500, limit 5000
        params = LimitParams(ilower=500, max_limit=5000)
        n = _merge_iteration_count(100.0, 100.0, params)
        assert n is not None
        assert 5 <= n <= 50
        assert 100 % n == 0  # an even divisor of 100 exists in range

    def test_infeasible_when_iters_too_few(self):
        params = LimitParams(ilower=500, max_limit=5000)
        assert _merge_iteration_count(100.0, 3.0, params) is None

    def test_infeasible_when_iteration_too_big(self):
        params = LimitParams(ilower=500, max_limit=5000)
        # single iteration already exceeds limit -> no valid N >= 2
        assert _merge_iteration_count(6000.0, 100.0, params) is None

    def test_zero_size(self):
        params = LimitParams(ilower=500, max_limit=5000)
        assert _merge_iteration_count(0.0, 100.0, params) is None


class TestLimitParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            LimitParams(ilower=100, max_limit=100)
        with pytest.raises(ValueError):
            LimitParams(ilower=0, max_limit=100)


class TestLimitSelection:
    def test_forced_markers_bound_interval_size(self, toy_program, toy_input):
        graph = build_call_loop_graph(toy_program, [toy_input])
        result = select_markers_with_limit(
            graph, LimitParams(ilower=500, max_limit=5000)
        )
        assert result.markers
        # every selected marker's own max interval respects the limit
        for m in result.markers:
            assert m.max_interval <= 5000 * max(1, m.merge_iterations) or m.forced

    def test_merged_loop_markers_created(self, toy_program, toy_input):
        graph = build_call_loop_graph(toy_program, [toy_input])
        result = select_markers_with_limit(
            graph, LimitParams(ilower=500, max_limit=5000)
        )
        merged = [m for m in result.markers if m.merge_iterations > 1]
        assert merged  # the stable inner loop gets iteration merging
        for m in merged:
            assert m.src.kind == NodeKind.LOOP_HEAD
            assert m.dst.kind == NodeKind.LOOP_BODY
            assert m.avg_interval >= 500

    def test_more_markers_than_no_limit(self, toy_program, toy_input):
        """Limiting interval size forces extra (smaller) markers —
        the galgel/gcc effect the paper describes."""
        from repro.callloop import SelectionParams, select_markers

        graph = build_call_loop_graph(toy_program, [toy_input])
        base = select_markers(graph, SelectionParams(ilower=500))
        limited = select_markers_with_limit(
            graph, LimitParams(ilower=500, max_limit=5000)
        )
        assert len(limited.markers) >= len(base.markers)

    def test_deterministic(self, toy_program, toy_input):
        graph = build_call_loop_graph(toy_program, [toy_input])
        a = select_markers_with_limit(graph, LimitParams(ilower=500, max_limit=5000))
        b = select_markers_with_limit(graph, LimitParams(ilower=500, max_limit=5000))
        assert [(m.edge_key, m.merge_iterations) for m in a.markers] == [
            (m.edge_key, m.merge_iterations) for m in b.markers
        ]

    def test_marker_ids_dense(self, toy_program, toy_input):
        graph = build_call_loop_graph(toy_program, [toy_input])
        result = select_markers_with_limit(
            graph, LimitParams(ilower=500, max_limit=5000)
        )
        assert [m.marker_id for m in result.markers] == list(
            range(1, len(result.markers) + 1)
        )
