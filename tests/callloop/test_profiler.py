"""Unit tests for call-loop graph construction from traces."""

import pytest

from repro.callloop import CallLoopProfiler, build_call_loop_graph
from repro.callloop.graph import NodeKind
from repro.engine import Machine, record_trace
from repro.ir.program import ProgramInput


def test_graph_totals(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    trace = record_trace(Machine(toy_program, toy_input).run())
    assert graph.total_instructions == trace.total_instructions


def test_head_body_identical_for_nonrecursive(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    for proc in ("work", "emit"):
        head = next(n for n in graph.nodes if n.kind == NodeKind.PROC_HEAD and n.proc == proc)
        body = next(n for n in graph.nodes if n.kind == NodeKind.PROC_BODY and n.proc == proc)
        head_in = graph.in_edges(head)
        hb = graph.find_edge(head, body)
        assert hb is not None
        # non-recursive: head in-count equals head->body count
        assert sum(e.count for e in head_in) == hb.count
        assert hb.avg == pytest.approx(
            sum(e.total for e in head_in) / hb.count
        )


def test_loop_head_body_edge_counts(loop_only_program):
    inp = ProgramInput("i", seed=3)
    graph = build_call_loop_graph(loop_only_program, [inp])
    for node in graph.nodes:
        if node.kind == NodeKind.LOOP_HEAD:
            entries = sum(e.count for e in graph.in_edges(node))
            body_edge = graph.out_edges(node)[0]
            # iterations >= entries (each entry iterates at least once)
            assert body_edge.count >= entries


def test_multiple_inputs_merge(toy_program):
    inputs = [ProgramInput("a", seed=1), ProgramInput("b", seed=2)]
    graph = build_call_loop_graph(toy_program, inputs)
    single = build_call_loop_graph(toy_program, inputs[:1])
    root_edge_multi = next(e for e in graph.edges if e.src.kind == NodeKind.ROOT)
    root_edge_single = next(e for e in single.edges if e.src.kind == NodeKind.ROOT)
    assert root_edge_multi.count == 2
    assert root_edge_single.count == 1
    assert graph.total_instructions > single.total_instructions


def test_no_inputs_rejected(toy_program):
    with pytest.raises(ValueError):
        build_call_loop_graph(toy_program, [])


def test_profiler_incremental(toy_program, toy_input):
    profiler = CallLoopProfiler(toy_program)
    g1 = profiler.profile_input(toy_input)
    count_after_one = g1.find_edge(
        next(n for n in g1.nodes if n.kind == NodeKind.ROOT),
        next(n for n in g1.nodes if n.kind == NodeKind.PROC_HEAD and n.proc == "main"),
    ).count
    g2 = profiler.profile_input(toy_input.with_seed(99))
    assert g2 is g1  # same graph object accumulates
    root = next(n for n in g2.nodes if n.kind == NodeKind.ROOT)
    main_head = next(
        n for n in g2.nodes if n.kind == NodeKind.PROC_HEAD and n.proc == "main"
    )
    assert g2.find_edge(root, main_head).count == count_after_one + 1


def test_edge_conservation(toy_program, toy_input):
    """Total hierarchical instructions on the root edge == program total."""
    graph = build_call_loop_graph(toy_program, [toy_input])
    root_edge = next(e for e in graph.edges if e.src.kind == NodeKind.ROOT)
    assert root_edge.total == graph.total_instructions


def test_site_sources_recorded(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    call_edges = [
        e
        for e in graph.edges
        if e.dst.kind == NodeKind.PROC_HEAD and e.src.kind != NodeKind.ROOT
    ]
    assert call_edges
    assert all(e.site_sources for e in call_edges)


def test_summary_mentions_counts(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    text = graph.summary()
    assert "toy" in text and "edges" in text
