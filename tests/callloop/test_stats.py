"""Unit and property tests for running statistics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.callloop.stats import RunningStats

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


def fill(values):
    s = RunningStats()
    for v in values:
        s.add(v)
    return s


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.std == 0.0
        assert s.cov == 0.0

    def test_single_value(self):
        s = fill([42.0])
        assert s.mean == 42.0
        assert s.std == 0.0
        assert s.max_value == 42.0
        assert s.min_value == 42.0

    def test_known_values(self):
        s = fill([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.mean == pytest.approx(5.0)
        assert s.std == pytest.approx(2.0)
        assert s.cov == pytest.approx(0.4)
        assert s.max_value == 9.0

    def test_total(self):
        s = fill([1.0, 2.0, 3.0])
        assert s.total == pytest.approx(6.0)

    def test_cov_zero_mean(self):
        s = fill([1.0, -1.0])
        assert s.cov == 0.0  # mean 0: CoV defined as 0

    @given(st.lists(finite, min_size=1, max_size=200))
    def test_matches_numpy(self, values):
        s = fill(values)
        arr = np.array(values)
        assert s.count == len(values)
        assert s.mean == pytest.approx(arr.mean(), rel=1e-6, abs=1e-6)
        assert s.std == pytest.approx(arr.std(), rel=1e-6, abs=1e-3)
        assert s.max_value == arr.max()
        assert s.min_value == arr.min()

    @given(
        st.lists(finite, min_size=0, max_size=50),
        st.lists(finite, min_size=0, max_size=50),
    )
    def test_merge_equals_concatenation(self, xs, ys):
        merged = fill(xs).merge(fill(ys))
        combined = fill(xs + ys)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean, rel=1e-6, abs=1e-6)
        assert merged.std == pytest.approx(combined.std, rel=1e-5, abs=1e-3)
        if xs or ys:
            assert merged.max_value == combined.max_value

    @given(
        st.lists(finite, min_size=1, max_size=30),
        st.lists(finite, min_size=1, max_size=30),
    )
    def test_merge_commutative(self, xs, ys):
        a = fill(xs).merge(fill(ys))
        b = fill(ys).merge(fill(xs))
        assert a.count == b.count
        assert a.mean == pytest.approx(b.mean, rel=1e-9, abs=1e-9)
        assert a.m2 == pytest.approx(b.m2, rel=1e-6, abs=1e-3)

    def test_merge_with_empty_is_identity(self):
        s = fill([1.0, 5.0, 9.0])
        merged = s.merge(RunningStats())
        assert merged.count == s.count
        assert merged.mean == s.mean
        merged2 = RunningStats().merge(s)
        assert merged2.count == s.count

    @given(st.lists(finite, min_size=1, max_size=100))
    def test_count_times_avg_is_total(self, values):
        s = fill(values)
        assert s.total == pytest.approx(sum(values), rel=1e-6, abs=1e-3)

    @given(st.lists(finite, min_size=1, max_size=100))
    def test_max_geq_mean_geq_min(self, values):
        s = fill(values)
        assert s.max_value >= s.mean - 1e-9 or math.isclose(s.max_value, s.mean)
        assert s.min_value <= s.mean + 1e-9
