"""Unit tests for marker-set and call-loop-graph JSON serialization."""

import json

import pytest

from repro.callloop import SelectionParams, build_call_loop_graph, select_markers
from repro.callloop.graph import Node, NodeKind
from repro.callloop.markers import MarkerSet, PhaseMarker
from repro.callloop.serialization import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_markers,
    marker_set_from_dict,
    marker_set_to_dict,
    save_graph,
    save_markers,
)
from repro.ir.program import SourceLoc


def sample_set():
    src = Node(NodeKind.PROC_BODY, "main", label="main")
    dst = Node(NodeKind.LOOP_HEAD, "main", "main@m.c:4", "outer")
    marker = PhaseMarker(
        marker_id=1,
        src=src,
        dst=dst,
        avg_interval=50_000.0,
        cov=0.03,
        max_interval=62_000.0,
        merge_iterations=4,
        forced=True,
        site_sources=(SourceLoc("m.c", 4),),
    )
    return MarkerSet("toy", "alpha-base", 10_000.0, 200_000.0, [marker])


def test_roundtrip_preserves_everything():
    original = sample_set()
    back = marker_set_from_dict(marker_set_to_dict(original))
    assert back.program_name == original.program_name
    assert back.variant == original.variant
    assert back.ilower == original.ilower
    assert back.max_limit == original.max_limit
    assert list(back) == list(original)  # frozen dataclasses compare by value


def test_dict_is_json_serializable():
    text = json.dumps(marker_set_to_dict(sample_set()))
    assert "main@m.c:4" in text


def test_file_roundtrip(tmp_path):
    path = tmp_path / "markers.json"
    save_markers(sample_set(), path)
    back = load_markers(path)
    assert list(back) == list(sample_set())


def test_unknown_version_rejected():
    data = marker_set_to_dict(sample_set())
    data["format_version"] = 99
    with pytest.raises(ValueError, match="version"):
        marker_set_from_dict(data)


def test_real_markers_roundtrip(toy_program, toy_input, tmp_path):
    graph = build_call_loop_graph(toy_program, [toy_input])
    markers = select_markers(graph, SelectionParams(ilower=500)).markers
    path = tmp_path / "toy.json"
    save_markers(markers, path)
    back = load_markers(path)
    assert list(back) == list(markers)


def test_loaded_markers_still_fire(toy_program, toy_input, tmp_path):
    """The deployment path: markers from a file drive a fresh run."""
    from repro.callloop import marker_trace

    graph = build_call_loop_graph(toy_program, [toy_input])
    markers = select_markers(graph, SelectionParams(ilower=500)).markers
    path = tmp_path / "toy.json"
    save_markers(markers, path)
    loaded = load_markers(path)
    a = marker_trace(toy_program, toy_input, markers)
    b = marker_trace(toy_program, toy_input, loaded)
    assert [(f.marker_id, f.t) for f in a] == [(f.marker_id, f.t) for f in b]


# -- call-loop graph round-trips ----------------------------------------------


def test_graph_roundtrip_is_exact(toy_program, toy_input):
    """Serialize -> load -> serialize is a fixed point, bit for bit."""
    graph = build_call_loop_graph(toy_program, [toy_input])
    doc = json.dumps(graph_to_dict(graph), sort_keys=True)
    back = graph_from_dict(json.loads(doc))
    assert json.dumps(graph_to_dict(back), sort_keys=True) == doc
    assert back.program_name == graph.program_name
    assert back.variant == graph.variant
    assert back.total_instructions == graph.total_instructions
    assert back.num_edges == graph.num_edges


def test_graph_roundtrip_preserves_edge_order(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    back = graph_from_dict(graph_to_dict(graph))
    assert [(str(e.src), str(e.dst)) for e in back.edges] == [
        (str(e.src), str(e.dst)) for e in graph.edges
    ]


def test_selection_over_loaded_graph_identical(toy_program, toy_input, tmp_path):
    """Markers selected from a loaded graph match the original exactly."""
    graph = build_call_loop_graph(toy_program, [toy_input])
    path = tmp_path / "graph.json"
    save_graph(graph, path)
    loaded = load_graph(path)
    params = SelectionParams(ilower=500)
    original = select_markers(graph, params).markers
    reloaded = select_markers(loaded, params).markers
    assert list(reloaded) == list(original)
    assert reloaded.describe() == original.describe()


def test_graph_unknown_version_rejected(toy_program, toy_input):
    data = graph_to_dict(build_call_loop_graph(toy_program, [toy_input]))
    data["graph_format_version"] = 99
    with pytest.raises(ValueError, match="version"):
        graph_from_dict(data)


# -- adversarial round-trips --------------------------------------------------


def test_marker_with_nan_and_inf_cov_roundtrips():
    """CoV can degenerate (0/0 -> NaN) in pathological profiles; the
    serialization layer must pass such values through, not mangle them."""
    import math

    src = Node(NodeKind.PROC_BODY, "main", label="main")
    nan_marker = PhaseMarker(
        marker_id=1,
        src=src,
        dst=Node(NodeKind.PROC_HEAD, "a", label="a"),
        avg_interval=float("inf"),
        cov=float("nan"),
        max_interval=float("inf"),
    )
    original = MarkerSet("weird", "base", 10_000.0, None, [nan_marker])
    back = marker_set_from_dict(
        json.loads(json.dumps(marker_set_to_dict(original)))
    )
    (m,) = list(back)
    assert math.isnan(m.cov)
    assert m.avg_interval == float("inf")
    assert m.max_interval == float("inf")


def test_graph_with_nan_stats_roundtrips():
    import math

    from repro.callloop.graph import CallLoopGraph

    graph = CallLoopGraph("nan")
    edge = graph.edge(
        Node(NodeKind.PROC_HEAD, "a", label="a"),
        Node(NodeKind.PROC_BODY, "a", label="a"),
    )
    edge.stats.count = 2
    edge.stats.mean = float("nan")
    edge.stats.m2 = float("inf")
    edge.stats.max_value = float("nan")
    back = graph_from_dict(json.loads(json.dumps(graph_to_dict(graph))))
    stats = back.edges[0].stats
    assert stats.count == 2
    assert math.isnan(stats.mean)
    assert stats.m2 == float("inf")
    assert math.isnan(stats.max_value)


def test_empty_graph_roundtrips():
    from repro.callloop.graph import CallLoopGraph

    graph = CallLoopGraph("empty", variant="weird-variant")
    back = graph_from_dict(json.loads(json.dumps(graph_to_dict(graph))))
    assert back.num_edges == 0
    assert back.num_nodes == 0
    assert back.total_instructions == 0
    assert back.variant == "weird-variant"


def test_empty_marker_set_roundtrips():
    original = MarkerSet("none", "base", 10_000.0, None, [])
    back = marker_set_from_dict(marker_set_to_dict(original))
    assert len(back) == 0
    assert back.num_phase_ids == 1


def test_unicode_procedure_names_roundtrip(tmp_path):
    """Node identity is source-stable strings; non-ASCII names (mangled
    C++, UTF-8 sources) must survive the file round-trip byte-exactly."""
    from repro.callloop.graph import CallLoopGraph

    name = "número_π_関数"
    graph = CallLoopGraph("unicode")
    src = Node(NodeKind.PROC_BODY, name, label=name)
    dst = Node(NodeKind.LOOP_HEAD, name, f"{name}@ü.c:4", "схлеб")
    graph.observe(src, dst, 123.0, SourceLoc("ü.c", 4))
    path = tmp_path / "unicode.json"
    save_graph(graph, path)
    back = load_graph(path)
    (edge,) = back.edges
    assert edge.src == src
    assert edge.dst == dst
    assert edge.site_sources == {SourceLoc("ü.c", 4)}

    markers = MarkerSet(
        "unicode", "base", 1.0, None,
        [PhaseMarker(1, src, dst, 1.0, 0.0, 1.0)],
    )
    mpath = tmp_path / "unicode-markers.json"
    save_markers(markers, mpath)
    assert list(load_markers(mpath)) == list(markers)


def test_graph_with_nodes_but_zero_observations_roundtrips():
    """Head/body nodes connected by never-traversed edges (created but
    not observed) keep count 0 through the round-trip and select to an
    empty marker set rather than crashing."""
    from repro.callloop.graph import CallLoopGraph

    graph = CallLoopGraph("hollow")
    for proc in ("a", "b"):
        graph.edge(
            Node(NodeKind.PROC_HEAD, proc, label=proc),
            Node(NodeKind.PROC_BODY, proc, label=proc),
        )
    back = graph_from_dict(graph_to_dict(graph))
    assert back.num_nodes == 4
    assert all(e.count == 0 for e in back.edges)
    result = select_markers(back, SelectionParams(ilower=1))
    assert list(result.markers) == []


def test_graph_roundtrip_preserves_empty_stats_sentinels():
    """An edge with zero observations keeps its +-inf min/max sentinels."""
    from repro.callloop.graph import CallLoopGraph

    graph = CallLoopGraph("empty")
    graph.edge(Node(NodeKind.PROC_HEAD, "a", label="a"), Node(NodeKind.PROC_BODY, "a", label="a"))
    back = graph_from_dict(graph_to_dict(graph))
    stats = back.edges[0].stats
    assert stats.count == 0
    assert stats.max_value == float("-inf")
    assert stats.min_value == float("inf")
