"""Unit tests for marker-set and call-loop-graph JSON serialization."""

import json

import pytest

from repro.callloop import SelectionParams, build_call_loop_graph, select_markers
from repro.callloop.graph import Node, NodeKind
from repro.callloop.markers import MarkerSet, PhaseMarker
from repro.callloop.serialization import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    load_markers,
    marker_set_from_dict,
    marker_set_to_dict,
    save_graph,
    save_markers,
)
from repro.ir.program import SourceLoc


def sample_set():
    src = Node(NodeKind.PROC_BODY, "main", label="main")
    dst = Node(NodeKind.LOOP_HEAD, "main", "main@m.c:4", "outer")
    marker = PhaseMarker(
        marker_id=1,
        src=src,
        dst=dst,
        avg_interval=50_000.0,
        cov=0.03,
        max_interval=62_000.0,
        merge_iterations=4,
        forced=True,
        site_sources=(SourceLoc("m.c", 4),),
    )
    return MarkerSet("toy", "alpha-base", 10_000.0, 200_000.0, [marker])


def test_roundtrip_preserves_everything():
    original = sample_set()
    back = marker_set_from_dict(marker_set_to_dict(original))
    assert back.program_name == original.program_name
    assert back.variant == original.variant
    assert back.ilower == original.ilower
    assert back.max_limit == original.max_limit
    assert list(back) == list(original)  # frozen dataclasses compare by value


def test_dict_is_json_serializable():
    text = json.dumps(marker_set_to_dict(sample_set()))
    assert "main@m.c:4" in text


def test_file_roundtrip(tmp_path):
    path = tmp_path / "markers.json"
    save_markers(sample_set(), path)
    back = load_markers(path)
    assert list(back) == list(sample_set())


def test_unknown_version_rejected():
    data = marker_set_to_dict(sample_set())
    data["format_version"] = 99
    with pytest.raises(ValueError, match="version"):
        marker_set_from_dict(data)


def test_real_markers_roundtrip(toy_program, toy_input, tmp_path):
    graph = build_call_loop_graph(toy_program, [toy_input])
    markers = select_markers(graph, SelectionParams(ilower=500)).markers
    path = tmp_path / "toy.json"
    save_markers(markers, path)
    back = load_markers(path)
    assert list(back) == list(markers)


def test_loaded_markers_still_fire(toy_program, toy_input, tmp_path):
    """The deployment path: markers from a file drive a fresh run."""
    from repro.callloop import marker_trace

    graph = build_call_loop_graph(toy_program, [toy_input])
    markers = select_markers(graph, SelectionParams(ilower=500)).markers
    path = tmp_path / "toy.json"
    save_markers(markers, path)
    loaded = load_markers(path)
    a = marker_trace(toy_program, toy_input, markers)
    b = marker_trace(toy_program, toy_input, loaded)
    assert [(f.marker_id, f.t) for f in a] == [(f.marker_id, f.t) for f in b]


# -- call-loop graph round-trips ----------------------------------------------


def test_graph_roundtrip_is_exact(toy_program, toy_input):
    """Serialize -> load -> serialize is a fixed point, bit for bit."""
    graph = build_call_loop_graph(toy_program, [toy_input])
    doc = json.dumps(graph_to_dict(graph), sort_keys=True)
    back = graph_from_dict(json.loads(doc))
    assert json.dumps(graph_to_dict(back), sort_keys=True) == doc
    assert back.program_name == graph.program_name
    assert back.variant == graph.variant
    assert back.total_instructions == graph.total_instructions
    assert back.num_edges == graph.num_edges


def test_graph_roundtrip_preserves_edge_order(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    back = graph_from_dict(graph_to_dict(graph))
    assert [(str(e.src), str(e.dst)) for e in back.edges] == [
        (str(e.src), str(e.dst)) for e in graph.edges
    ]


def test_selection_over_loaded_graph_identical(toy_program, toy_input, tmp_path):
    """Markers selected from a loaded graph match the original exactly."""
    graph = build_call_loop_graph(toy_program, [toy_input])
    path = tmp_path / "graph.json"
    save_graph(graph, path)
    loaded = load_graph(path)
    params = SelectionParams(ilower=500)
    original = select_markers(graph, params).markers
    reloaded = select_markers(loaded, params).markers
    assert list(reloaded) == list(original)
    assert reloaded.describe() == original.describe()


def test_graph_unknown_version_rejected(toy_program, toy_input):
    data = graph_to_dict(build_call_loop_graph(toy_program, [toy_input]))
    data["graph_format_version"] = 99
    with pytest.raises(ValueError, match="version"):
        graph_from_dict(data)


def test_graph_roundtrip_preserves_empty_stats_sentinels():
    """An edge with zero observations keeps its +-inf min/max sentinels."""
    from repro.callloop.graph import CallLoopGraph

    graph = CallLoopGraph("empty")
    graph.edge(Node(NodeKind.PROC_HEAD, "a", label="a"), Node(NodeKind.PROC_BODY, "a", label="a"))
    back = graph_from_dict(graph_to_dict(graph))
    stats = back.edges[0].stats
    assert stats.count == 0
    assert stats.max_value == float("-inf")
    assert stats.min_value == float("inf")
