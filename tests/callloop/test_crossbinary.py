"""Unit tests for cross-binary marker mapping (Section 6.2.1)."""

import pytest

from repro.callloop import (
    SelectionParams,
    build_call_loop_graph,
    map_markers,
    marker_trace,
    select_markers,
)
from repro.callloop.crossbinary import traces_identical
from repro.ir.linker import ALPHA_O0, ALPHA_PEAK, X86_LINUX, link
from repro.ir.program import ProgramInput


@pytest.fixture
def toy_markers(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    return select_markers(graph, SelectionParams(ilower=500)).markers


def test_markers_map_to_all_variants(toy_program, toy_markers):
    for variant in (ALPHA_O0, ALPHA_PEAK, X86_LINUX):
        target = link(toy_program, variant)
        report = map_markers(toy_markers, target)
        assert report.fully_mapped
        assert len(report.markers) == len(toy_markers)


def test_marker_traces_identical_across_binaries(toy_program, toy_input, toy_markers):
    """The paper's verification: exact same markers in the exact same
    order across two compilations of one source, on the same input."""
    base_trace = marker_trace(toy_program, toy_input, toy_markers)
    assert base_trace  # markers actually fire
    for variant in (ALPHA_O0, ALPHA_PEAK, X86_LINUX):
        target = link(toy_program, variant)
        mapped = map_markers(toy_markers, target).markers
        other_trace = marker_trace(target, toy_input, mapped)
        assert traces_identical(base_trace, other_trace)


def test_instruction_counts_differ_across_binaries(toy_program, toy_input, toy_markers):
    target = link(toy_program, ALPHA_O0)
    mapped = map_markers(toy_markers, target).markers
    a = marker_trace(toy_program, toy_input, toy_markers)
    b = marker_trace(target, toy_input, mapped)
    # same sequence, different instruction offsets (the point of VLIs)
    if len(a) > 1:
        assert [f.t for f in a] != [f.t for f in b]


def test_traces_differ_across_inputs(toy_program, toy_markers):
    a = marker_trace(toy_program, ProgramInput("i", seed=1), toy_markers)
    b = marker_trace(toy_program, ProgramInput("i", seed=2), toy_markers)
    # firing *times* shift with input even if order is stable
    assert [f.t for f in a] != [f.t for f in b]


def test_firings_are_time_ordered(toy_program, toy_input, toy_markers):
    firings = marker_trace(toy_program, toy_input, toy_markers)
    ts = [f.t for f in firings]
    assert ts == sorted(ts)


def test_unmapped_marker_reported(toy_program, toy_markers):
    """Deleting a procedure from the target leaves its markers unmapped."""
    import copy

    from repro.callloop.markers import MarkerSet, PhaseMarker
    from repro.callloop.graph import Node, NodeKind

    ghost = PhaseMarker(
        marker_id=99,
        src=Node(NodeKind.PROC_BODY, "main"),
        dst=Node(NodeKind.PROC_HEAD, "compiled_away"),
        avg_interval=1000.0,
        cov=0.0,
        max_interval=1000.0,
    )
    ms = MarkerSet("toy", "base", 500.0, None, list(toy_markers) + [ghost])
    report = map_markers(ms, toy_program)
    assert ghost in report.unmapped
    assert not report.fully_mapped
