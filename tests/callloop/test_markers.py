"""Unit tests for marker sets and runtime marker tracking."""

import pytest

from repro.callloop.graph import Node, NodeKind, NodeTable
from repro.callloop.markers import MarkerSet, MarkerTracker, PhaseMarker


def node(name, kind=NodeKind.PROC_HEAD, uid="", label=""):
    return Node(kind, name, uid, label)


def marker(mid, src, dst, merge=1):
    return PhaseMarker(
        marker_id=mid,
        src=src,
        dst=dst,
        avg_interval=1000.0,
        cov=0.01,
        max_interval=2000.0,
        merge_iterations=merge,
    )


class TestMarkerSet:
    def test_lookup(self):
        a, b = node("a"), node("b")
        ms = MarkerSet("p", "base", 100.0, None, [marker(1, a, b)])
        assert ms.marker_for(a, b).marker_id == 1
        assert ms.marker_for(b, a) is None
        assert len(ms) == 1
        assert ms.num_phase_ids == 2  # + phase 0

    def test_duplicate_edges_rejected(self):
        a, b = node("a"), node("b")
        with pytest.raises(ValueError):
            MarkerSet("p", "base", 100.0, None, [marker(1, a, b), marker(2, a, b)])

    def test_describe(self):
        a, b = node("a"), node("b")
        ms = MarkerSet("p", "base", 100.0, 5000.0, [marker(1, a, b, merge=3)])
        text = ms.describe()
        assert "x3" in text and "max_limit" in text


class TestMarkerTracker:
    def _table(self, toy_program):
        return NodeTable(toy_program)

    def test_simple_fire(self, toy_program):
        table = NodeTable(toy_program)
        src = table.node(table.proc_body["main"])
        dst = table.node(table.proc_head["work"])
        ms = MarkerSet("toy", "base", 100.0, None, [marker(7, src, dst)])
        tracker = MarkerTracker(ms, table)
        s, d = table.index(src), table.index(dst)
        assert tracker.edge_opened(s, d).marker_id == 7
        assert tracker.edge_opened(s, d).marker_id == 7  # fires every time
        assert tracker.edge_opened(d, s) is None

    def test_merged_fires_every_nth(self, toy_program):
        table = NodeTable(toy_program)
        header = next(iter(table.loop_head))
        head = table.node(table.loop_head[header])
        body = table.node(table.loop_body[header])
        ms = MarkerSet("toy", "base", 100.0, None, [marker(3, head, body, merge=4)])
        tracker = MarkerTracker(ms, table)
        h, b = table.index(head), table.index(body)
        fires = [tracker.edge_opened(h, b) is not None for _ in range(10)]
        assert fires == [True, False, False, False, True, False, False, False, True, False]

    def test_merged_counter_resets_on_loop_entry(self, toy_program):
        table = NodeTable(toy_program)
        header = next(iter(table.loop_head))
        head = table.node(table.loop_head[header])
        body = table.node(table.loop_body[header])
        ms = MarkerSet("toy", "base", 100.0, None, [marker(3, head, body, merge=4)])
        tracker = MarkerTracker(ms, table)
        h, b = table.index(head), table.index(body)
        assert tracker.edge_opened(h, b) is not None
        assert tracker.edge_opened(h, b) is None
        # loop re-entered: any edge into the head resets the counter
        parent = table.proc_body["main"]
        tracker.edge_opened(parent, h)
        assert tracker.edge_opened(h, b) is not None

    def test_reset_restarts_merged_cadence(self, toy_program):
        """reset() returns the tracker to fresh-run state: the every-Nth
        cadence starts over, as if no iterations had been seen."""
        table = NodeTable(toy_program)
        header = next(iter(table.loop_head))
        head = table.node(table.loop_head[header])
        body = table.node(table.loop_body[header])
        ms = MarkerSet("toy", "base", 100.0, None, [marker(3, head, body, merge=4)])
        tracker = MarkerTracker(ms, table)
        h, b = table.index(head), table.index(body)
        fresh = [tracker.edge_opened(h, b) is not None for _ in range(6)]
        tracker.reset()
        rerun = [tracker.edge_opened(h, b) is not None for _ in range(6)]
        assert rerun == fresh == [True, False, False, False, True, False]

    def test_reset_is_a_noop_mid_cadence_for_plain_markers(self, toy_program):
        table = NodeTable(toy_program)
        src = table.node(table.proc_body["main"])
        dst = table.node(table.proc_head["work"])
        ms = MarkerSet("toy", "base", 100.0, None, [marker(7, src, dst)])
        tracker = MarkerTracker(ms, table)
        s, d = table.index(src), table.index(dst)
        assert tracker.edge_opened(s, d).marker_id == 7
        tracker.reset()
        assert tracker.edge_opened(s, d).marker_id == 7

    def test_suppressed_consumer_does_not_rewind_cadence(self, toy_program):
        """The tracker owns the cadence: a consumer ignoring a firing
        (hysteresis) must see the *same* later firing points as an eager
        consumer — firing is a function of the iteration count alone."""
        table = NodeTable(toy_program)
        header = next(iter(table.loop_head))
        head = table.node(table.loop_head[header])
        body = table.node(table.loop_body[header])
        ms = MarkerSet("toy", "base", 100.0, None, [marker(3, head, body, merge=3)])
        eager = MarkerTracker(ms, table)
        lazy = MarkerTracker(ms, table)
        h, b = table.index(head), table.index(body)
        eager_fires = []
        lazy_fires = []
        for i in range(12):
            eager_fires.append(i) if eager.edge_opened(h, b) else None
            # the lazy consumer "suppresses" the first firing but still
            # forwards every edge open to its tracker
            fired = lazy.edge_opened(h, b) is not None
            if fired and i > 0:
                lazy_fires.append(i)
        assert eager_fires == [0, 3, 6, 9]
        assert lazy_fires == [3, 6, 9]  # same points, minus the suppressed one

    def test_unmapped_markers_reported(self, toy_program):
        table = NodeTable(toy_program)
        ghost = node("ghost")
        src = table.node(table.proc_body["main"])
        ms = MarkerSet("toy", "base", 100.0, None, [marker(1, src, ghost)])
        tracker = MarkerTracker(ms, table)
        assert tracker.unmapped == list(ms)
