"""Unit tests for DOT export of call-loop graphs."""

from repro.callloop import (
    SelectionParams,
    build_call_loop_graph,
    select_markers,
    to_dot,
)


def test_dot_structure(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    dot = to_dot(graph)
    assert dot.startswith('digraph "toy"')
    assert dot.rstrip().endswith("}")
    # every procedure appears
    for proc in toy_program.procedures:
        assert proc in dot
    # edge annotations in the Figure 2 style
    assert "C=" in dot and "A=" in dot and "CoV=" in dot


def test_markers_highlighted(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    markers = select_markers(graph, SelectionParams(ilower=500)).markers
    plain = to_dot(graph)
    highlighted = to_dot(graph, markers)
    assert "color=red" not in plain
    assert highlighted.count("color=red") == len(markers)


def test_min_edge_count_filters(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    full = to_dot(graph)
    filtered = to_dot(graph, min_edge_count=10)
    assert filtered.count("->") < full.count("->")


def test_node_ids_are_dot_safe(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    dot = to_dot(graph)
    for line in dot.splitlines():
        if line.strip().startswith("n_"):
            identifier = line.strip().split(" ")[0]
            assert all(c.isalnum() or c == "_" for c in identifier), identifier
