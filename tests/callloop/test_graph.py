"""Unit tests for the call-loop graph data structure."""

import pytest

from repro.callloop.graph import CallLoopGraph, Node, NodeKind, NodeTable, ROOT


def n(kind, proc, uid="", label=""):
    return Node(kind, proc, uid, label)


HEAD_A = n(NodeKind.PROC_HEAD, "a")
BODY_A = n(NodeKind.PROC_BODY, "a")
HEAD_B = n(NodeKind.PROC_HEAD, "b")


class TestGraph:
    def test_edge_get_or_create(self):
        g = CallLoopGraph("p")
        e1 = g.edge(HEAD_A, BODY_A)
        e2 = g.edge(HEAD_A, BODY_A)
        assert e1 is e2
        assert g.num_edges == 1

    def test_observe_accumulates(self):
        g = CallLoopGraph("p")
        g.observe(HEAD_A, BODY_A, 100)
        g.observe(HEAD_A, BODY_A, 200)
        e = g.find_edge(HEAD_A, BODY_A)
        assert e.count == 2
        assert e.avg == 150
        assert e.max == 200
        assert e.total == 300

    def test_adjacency(self):
        g = CallLoopGraph("p")
        g.observe(HEAD_A, BODY_A, 1)
        g.observe(BODY_A, HEAD_B, 1)
        assert [e.dst for e in g.out_edges(BODY_A)] == [HEAD_B]
        assert [e.src for e in g.in_edges(BODY_A)] == [HEAD_A]
        assert g.out_degree(HEAD_B) == 0
        assert list(g.successors(HEAD_A)) == [BODY_A]

    def test_cov_on_edge(self):
        g = CallLoopGraph("p")
        for v in (90, 110):
            g.observe(HEAD_A, BODY_A, v)
        e = g.find_edge(HEAD_A, BODY_A)
        assert e.cov == pytest.approx(10 / 100)

    def test_merge_graphs(self):
        g1 = CallLoopGraph("p")
        g1.observe(HEAD_A, BODY_A, 100)
        g1.total_instructions = 100
        g2 = CallLoopGraph("p")
        g2.observe(HEAD_A, BODY_A, 200)
        g2.observe(BODY_A, HEAD_B, 50)
        g2.total_instructions = 250
        merged = g1.merged_with(g2)
        assert merged.total_instructions == 350
        assert merged.find_edge(HEAD_A, BODY_A).count == 2
        assert merged.find_edge(BODY_A, HEAD_B).count == 1

    def test_merge_different_programs_rejected(self):
        with pytest.raises(ValueError):
            CallLoopGraph("a").merged_with(CallLoopGraph("b"))

    def test_node_str(self):
        assert str(ROOT) == "<root>"
        assert "head" in str(HEAD_A)
        loop = n(NodeKind.LOOP_BODY, "a", "a@f:1", "l")
        assert "loop-body" in str(loop)

    def test_kind_predicates(self):
        assert NodeKind.PROC_HEAD.is_head
        assert not NodeKind.PROC_BODY.is_head
        assert NodeKind.LOOP_BODY.is_loop
        assert not NodeKind.PROC_BODY.is_loop


class TestNodeTable:
    def test_all_static_nodes_present(self, toy_program):
        table = NodeTable(toy_program)
        # root + 2 nodes per proc + 2 per loop
        assert len(table) == 1 + 2 * 3 + 2 * 3
        assert table.node(0) == ROOT

    def test_index_roundtrip(self, toy_program):
        table = NodeTable(toy_program)
        for i in range(len(table)):
            assert table.index(table.node(i)) == i

    def test_loop_nodes_by_header(self, toy_program):
        table = NodeTable(toy_program)
        for header in table.loops:
            head = table.node(table.loop_head[header])
            body = table.node(table.loop_body[header])
            assert head.kind == NodeKind.LOOP_HEAD
            assert body.kind == NodeKind.LOOP_BODY
            assert head.loop_uid == body.loop_uid
