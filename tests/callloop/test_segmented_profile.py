"""Segmented parallel profiling: cut planning, walks, and exact merges.

The contract under test: ``profile_trace(trace, shards=N)`` produces a
graph *bit-identical* to the sequential walk for every executor, every
shard count, and every trace shape — including the shapes that cannot
be segmented at all, which must fall back to the sequential walk.
"""

import numpy as np
import pytest

from repro.callloop.graph import NodeTable
from repro.callloop.profiler import CallLoopProfiler, _MomentBuilder
from repro.callloop import profiler as profiler_mod
from repro.callloop.stats import MomentStats, RunningStats
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.callloop.serialization import graph_to_dict
from repro.engine import Machine, record_trace
from repro.engine.events import K_BLOCK, K_CALL, K_RETURN
from repro.engine.tracing import Trace
from repro.ir import ProgramBuilder
from repro.ir.program import ProgramInput


def sequential_graph(program, trace):
    profiler = CallLoopProfiler(program)
    profiler.profile_trace(trace)
    return graph_to_dict(profiler.graph)


def segmented_graph(program, trace, shards, executor=None):
    profiler = CallLoopProfiler(program)
    profiler.profile_trace(trace, shards=shards, executor=executor)
    return graph_to_dict(profiler.graph)


def build_single_block_program():
    b = ProgramBuilder("tiny")
    with b.proc("main"):
        b.code(5)
    return b.build()


# -- exact integer moments ---------------------------------------------------


def test_moment_stats_partition_invariance():
    """Any batching of the same observations gives identical moments."""
    values = [3, 7, 7, 1, 0, 12, 7, 5, 9, 2, 2, 8]
    one_by_one = MomentStats()
    for v in values:
        one_by_one.add(v)

    batched = MomentStats()
    batched.add_run(np.asarray(values[:5], dtype=np.int64))
    batched.add_run(np.asarray(values[5:], dtype=np.int64))

    merged = MomentStats()
    for lo, hi in ((0, 3), (3, 4), (4, 12)):
        part = MomentStats()
        for v in values[lo:hi]:
            part.add(v)
        merged.merge(part)

    for other in (batched, merged):
        assert other.count == one_by_one.count
        assert other.total == one_by_one.total
        assert other.sumsq == one_by_one.sumsq
        assert other.max_value == one_by_one.max_value
        assert other.min_value == one_by_one.min_value

    rs = one_by_one.to_running_stats()
    assert rs.count == len(values)
    assert rs.mean == pytest.approx(sum(values) / len(values))
    assert rs.variance == pytest.approx(np.var(values))
    assert rs.max_value == max(values)
    assert rs.min_value == min(values)


def test_moment_stats_empty():
    empty = MomentStats()
    assert empty.to_running_stats() == RunningStats()
    target = MomentStats()
    target.add(4)
    target.merge(empty)
    assert target.count == 1 and target.total == 4


# -- cut planning edge cases -------------------------------------------------


def test_plan_segments_trivial_inputs(toy_program, toy_input):
    walker = ContextWalker(toy_program, NodeTable(toy_program))
    trace = record_trace(Machine(toy_program, toy_input))
    assert walker.plan_segments(trace, 1) == []
    assert walker.plan_segments(trace, 0) == []
    one_row = Trace(
        trace.kinds[:1].copy(), trace.a[:1].copy(),
        trace.b[:1].copy(), trace.c[:1].copy(),
    )
    assert walker.plan_segments(one_row, 4) == []


def test_plan_segments_never_at_depth_zero(toy_program):
    """A frame spanning the whole trace leaves no interior cut points."""
    walker = ContextWalker(toy_program, NodeTable(toy_program))
    addr = min(b.address for b in toy_program.blocks)
    size = next(b.size for b in toy_program.blocks if b.address == addr)
    kinds = np.array([K_CALL, K_BLOCK, K_BLOCK, K_RETURN], dtype=np.int8)
    a = np.array([0, 1, 1, 0], dtype=np.int64)
    b_col = np.array([0, addr, addr, 0], dtype=np.int64)
    c = np.array([0, size, size, 0], dtype=np.int64)
    assert walker.plan_segments(Trace(kinds, a, b_col, c), 4) == []


def test_plan_segments_shorter_than_shard_count(recursive_program):
    """More shards than cut points: dedup to fewer segments, same result."""
    trace = record_trace(Machine(recursive_program, ProgramInput("r", seed=5)))
    walker = ContextWalker(recursive_program, NodeTable(recursive_program))
    segments = walker.plan_segments(trace, 1000)
    assert 0 < len(segments) < 1000
    assert segments[0].start == 0 and segments[-1].stop == len(trace)
    for prev, cur in zip(segments, segments[1:]):
        assert prev.stop == cur.start
    assert segmented_graph(recursive_program, trace, 1000) == sequential_graph(
        recursive_program, trace
    )


def test_unsegmentable_trace_falls_back(toy_input):
    program = build_single_block_program()
    trace = record_trace(Machine(program, toy_input))
    walker = ContextWalker(program, NodeTable(program))
    assert walker.plan_segments(trace, 4) == []
    assert segmented_graph(program, trace, 4) == sequential_graph(program, trace)


def test_truncated_trace_segments_identical(toy_program, toy_input):
    """An instruction-cap truncation (open frames at trace end) still
    segments, and the merged graph is unchanged."""
    full = record_trace(Machine(toy_program, toy_input))
    capped = record_trace(
        Machine(toy_program, toy_input, max_instructions=full.total_instructions // 2)
    )
    assert len(capped) < len(full)
    walker = ContextWalker(toy_program, NodeTable(toy_program))
    assert walker.plan_segments(capped, 4)
    assert segmented_graph(toy_program, capped, 4) == sequential_graph(
        toy_program, capped
    )


# -- segmented walk and merge ------------------------------------------------


@pytest.mark.parametrize("shards", [2, 3, 8])
def test_segmented_equals_sequential_fixtures(
    toy_program, recursive_program, loop_only_program, toy_input, shards
):
    for program in (toy_program, recursive_program, loop_only_program):
        trace = record_trace(Machine(program, toy_input))
        assert segmented_graph(program, trace, shards) == sequential_graph(
            program, trace
        )


@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
def test_executor_equivalence(toy_program, toy_input, executor, monkeypatch):
    # Force real pool fan-out even on a single-CPU machine.
    monkeypatch.setattr(profiler_mod, "_shard_workers", lambda: 4)
    trace = record_trace(Machine(toy_program, toy_input))
    assert segmented_graph(
        toy_program, trace, 4, executor=executor
    ) == sequential_graph(toy_program, trace)


def test_unknown_executor_rejected(toy_program, toy_input):
    trace = record_trace(Machine(toy_program, toy_input))
    profiler = CallLoopProfiler(toy_program)
    with pytest.raises(ValueError, match="shard executor"):
        profiler.profile_trace(trace, shards=2, executor="fibers")


def test_walk_segment_rejects_block_handlers(toy_program, toy_input):
    class BlockWatcher(ContextHandler):
        def on_block(self, block_id, address, size):
            pass

    trace = record_trace(Machine(toy_program, toy_input))
    walker = ContextWalker(toy_program, NodeTable(toy_program))
    segments = walker.plan_segments(trace, 2)
    assert segments
    with pytest.raises(ValueError, match="bulk-eligible"):
        walker.walk_segment(trace, BlockWatcher(), segments[0], is_first=True)


def test_multi_trace_accumulation_with_shards(toy_program, toy_input):
    """Folding several traces into one graph composes with sharding."""
    traces = [
        record_trace(Machine(toy_program, toy_input)),
        record_trace(Machine(toy_program, toy_input.with_seed(99))),
    ]
    sequential = CallLoopProfiler(toy_program)
    sharded = CallLoopProfiler(toy_program, shards=4)
    for trace in traces:
        sequential.profile_trace(trace)
        sharded.profile_trace(trace)
    assert graph_to_dict(sharded.graph) == graph_to_dict(sequential.graph)


def test_batched_iteration_hook_matches_per_close(toy_program, toy_input):
    """The vectorized back-edge batches accumulate the same moments as
    per-iteration close callbacks."""

    class Unbatched(_MomentBuilder):
        # Restoring the base hook makes the walker dispatch per-close.
        on_edge_iterations = ContextHandler.on_edge_iterations

    trace = record_trace(Machine(toy_program, toy_input))
    table = NodeTable(toy_program)
    batched, unbatched = _MomentBuilder(), Unbatched()
    ContextWalker(toy_program, table).walk(trace, batched, bulk=True)
    ContextWalker(toy_program, table).walk(trace, unbatched, bulk=True)
    assert batched.edges.keys() == unbatched.edges.keys()
    for key, entry in batched.edges.items():
        other = unbatched.edges[key]
        assert (entry[0].count, entry[0].total, entry[0].sumsq) == (
            other[0].count, other[0].total, other[0].sumsq
        )
        assert entry[1] == other[1]


def test_runner_profile_shards(toy_input):
    from repro.experiments.runner import Runner

    plain = Runner()
    sharded = Runner(profile_shards=4)
    spec = "gzip"
    assert graph_to_dict(sharded.graph(spec, "train")) == graph_to_dict(
        plain.graph(spec, "train")
    )


def test_cli_profile_shards_flag():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["experiment", "fig3", "--profile-shards", "4"]
    )
    assert args.profile_shards == 4
    args = build_parser().parse_args(["experiment", "fig3"])
    assert args.profile_shards is None
