"""Unit tests for the networkx export."""

import networkx as nx

from repro.callloop import build_call_loop_graph


def test_to_networkx_structure(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    g = graph.to_networkx()
    assert isinstance(g, nx.DiGraph)
    assert g.number_of_nodes() == graph.num_nodes
    assert g.number_of_edges() == graph.num_edges
    assert g.graph["program"] == "toy"


def test_edge_attributes_preserved(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    g = graph.to_networkx()
    for edge in graph.edges:
        data = g.edges[str(edge.src), str(edge.dst)]
        assert data["count"] == edge.count
        assert data["avg"] == edge.avg
        assert data["cov"] == edge.cov


def test_usable_with_networkx_algorithms(toy_program, toy_input):
    graph = build_call_loop_graph(toy_program, [toy_input])
    g = graph.to_networkx()
    # the call-loop graph of a non-recursive program is a DAG
    assert nx.is_directed_acyclic_graph(g)
    order = list(nx.topological_sort(g))
    assert order[0] == "<root>"
