"""Unit tests for static loop discovery."""

import pytest

from repro.callloop.loops import (
    check_proper_nesting,
    discover_loops,
    loops_by_procedure,
)
from repro.ir import ProgramBuilder


def test_discovers_all_loops(toy_program):
    loops = discover_loops(toy_program)
    labels = {l.label for l in loops.values()}
    assert labels == {"outer", "inner", "out"}


def test_back_edge_is_backwards(toy_program):
    for loop in discover_loops(toy_program).values():
        assert loop.latch_branch_address > loop.header_address


def test_region_containment():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("outer", trips=2):
            b.code(5, label="inside")
            with b.loop("inner", trips=2):
                b.code(3)
        b.code(4, label="after")
    prog = b.build()
    loops = {l.label: l for l in discover_loops(prog).values()}
    inside = next(blk for blk in prog.blocks if blk.label == "inside")
    after = next(blk for blk in prog.blocks if blk.label == "after")
    assert loops["outer"].contains_address(inside.address)
    assert not loops["outer"].contains_address(after.address)
    # inner nested in outer
    assert loops["outer"].header_address < loops["inner"].header_address
    assert loops["inner"].latch_branch_address < loops["outer"].latch_branch_address


def test_no_loops_in_straight_line():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(10)
        with b.if_(0.5):
            b.code(3)
    prog = b.build()
    assert discover_loops(prog) == {}


def test_uid_stable_across_variants(toy_program):
    from repro.ir.linker import ALPHA_O0, link

    a = {l.uid for l in discover_loops(toy_program).values()}
    b = {l.uid for l in discover_loops(link(toy_program, ALPHA_O0)).values()}
    assert a == b


def test_loops_by_procedure(toy_program):
    grouped = loops_by_procedure(discover_loops(toy_program))
    assert set(grouped) == {"main", "work", "emit"}
    assert [l.label for l in grouped["main"]] == ["outer"]


def test_nesting_check_passes(toy_program, loop_only_program):
    check_proper_nesting(discover_loops(toy_program))
    check_proper_nesting(discover_loops(loop_only_program))
