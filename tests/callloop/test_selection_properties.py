"""Property tests of the selection algorithm over random call-loop graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.callloop import LimitParams, SelectionParams, select_markers, select_markers_with_limit
from repro.callloop.graph import CallLoopGraph, Node, NodeKind, ROOT


@st.composite
def graph_strategy(draw):
    """A random layered call-loop-like graph with edge observations."""
    g = CallLoopGraph("rand")
    n_layers = draw(st.integers(1, 4))
    layers = [[ROOT]]
    node_id = 0
    for depth in range(n_layers):
        width = draw(st.integers(1, 3))
        layer = []
        for _ in range(width):
            kind = draw(
                st.sampled_from(
                    [NodeKind.PROC_HEAD, NodeKind.PROC_BODY,
                     NodeKind.LOOP_HEAD, NodeKind.LOOP_BODY]
                )
            )
            node = Node(kind, f"p{node_id}", label=f"p{node_id}")
            node_id += 1
            layer.append(node)
        layers.append(layer)
    # connect each node to one or more parents in the previous layer
    for parents, children in zip(layers[:-1], layers[1:]):
        for child in children:
            for parent in parents:
                if not draw(st.booleans()) and len(parents) > 1:
                    continue
                n_obs = draw(st.integers(1, 6))
                base = draw(st.integers(1, 100_000))
                jitter = draw(st.floats(0.0, 1.0))
                for k in range(n_obs):
                    g.observe(parent, child, base * (1.0 + jitter * (k % 3)))
    return g


SETTINGS = settings(max_examples=60, deadline=None)


@SETTINGS
@given(graph_strategy(), st.integers(10, 50_000))
def test_markers_satisfy_ilower(graph, ilower):
    result = select_markers(graph, SelectionParams(ilower=ilower))
    for marker in result.markers:
        assert marker.avg_interval >= ilower
        assert marker.src.kind is not NodeKind.ROOT


@SETTINGS
@given(graph_strategy(), st.integers(10, 50_000))
def test_markers_are_candidates(graph, ilower):
    result = select_markers(graph, SelectionParams(ilower=ilower))
    candidate_keys = {e.key() for e in result.candidates}
    for marker in result.markers:
        assert marker.edge_key in candidate_keys


@SETTINGS
@given(graph_strategy())
def test_selection_idempotent(graph):
    params = SelectionParams(ilower=1000)
    a = select_markers(graph, params)
    b = select_markers(graph, params)
    assert [m.edge_key for m in a.markers] == [m.edge_key for m in b.markers]


@SETTINGS
@given(graph_strategy(), st.integers(100, 10_000))
def test_limit_bounds_marker_maxima(graph, ilower):
    result = select_markers_with_limit(
        graph, LimitParams(ilower=ilower, max_limit=ilower * 20)
    )
    for marker in result.markers:
        if not marker.forced and marker.merge_iterations == 1:
            assert marker.max_interval <= ilower * 20


@SETTINGS
@given(graph_strategy())
def test_procs_only_is_subset_universe(graph):
    all_m = select_markers(graph, SelectionParams(ilower=100))
    procs = select_markers(
        graph, SelectionParams(ilower=100, procedures_only=True)
    )
    for marker in procs.markers:
        assert not marker.dst.kind.is_loop
    # procedures-only candidates are a subset of the full candidate set
    all_keys = {e.key() for e in all_m.candidates}
    assert {e.key() for e in procs.candidates} <= all_keys
