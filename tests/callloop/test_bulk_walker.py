"""Bulk trace replay vs the scalar walker (the trace-pipeline tentpole)."""

import numpy as np
import pytest

from repro.callloop.graph import NodeTable
from repro.callloop.walker import BULK_MIN_ROWS, ContextHandler, ContextWalker
from repro.engine import Machine, record_trace
from repro.engine.events import K_BLOCK
from repro.engine.tracing import Trace


class EdgeLog(ContextHandler):
    """Edge callbacks only — bulk-eligible, like the profiler's handler."""

    def __init__(self, walker):
        self.walker = walker
        self.log = []

    def on_edge_open(self, src, dst, t, source):
        self.log.append(("open", src, dst, t, str(source), self.walker.row))

    def on_edge_close(self, src, dst, t_open, t_close, source):
        self.log.append(
            ("close", src, dst, t_open, t_close, str(source), self.walker.row)
        )


class EdgeBranchLog(EdgeLog):
    """Additionally observes branches (still bulk-eligible)."""

    def on_branch(self, address, target, taken):
        self.log.append(("branch", address, target, taken, self.walker.row))


class BlockLog(EdgeLog):
    """Overrides on_block — must force the scalar path."""

    def on_block(self, block_id, size, t):
        self.log.append(("block", block_id, size, t, self.walker.row))


def both_walks(program, trace, handler_cls):
    table = NodeTable(program)
    scalar_walker = ContextWalker(program, table)
    scalar_log = handler_cls(scalar_walker)
    scalar_total = scalar_walker.walk_scalar(trace, scalar_log)
    bulk_walker = ContextWalker(program, table)
    bulk_log = handler_cls(bulk_walker)
    bulk_total = bulk_walker.walk(trace, bulk_log, bulk=True)
    return (scalar_total, scalar_log, scalar_walker), (bulk_total, bulk_log, bulk_walker)


@pytest.mark.parametrize("handler_cls", [EdgeLog, EdgeBranchLog])
@pytest.mark.parametrize(
    "fixture", ["toy_program", "recursive_program", "loop_only_program"]
)
def test_bulk_matches_scalar(request, toy_input, fixture, handler_cls):
    program = request.getfixturevalue(fixture)
    trace = record_trace(Machine(program, toy_input))
    (s_total, s_log, s_w), (b_total, b_log, b_w) = both_walks(
        program, trace, handler_cls
    )
    assert b_total == s_total
    assert b_log.log == s_log.log
    assert b_w.row == s_w.row


def test_bulk_matches_scalar_on_truncated_trace(toy_program, toy_input):
    """A cap-truncated trace (open frames unwound at trace end) replays
    identically through both paths."""
    trace = record_trace(Machine(toy_program, toy_input, max_instructions=3000))
    (s_total, s_log, _), (b_total, b_log, _) = both_walks(
        toy_program, trace, EdgeLog
    )
    assert b_total == s_total
    assert b_log.log == s_log.log


def test_empty_trace_bulk(toy_program):
    trace = record_trace([])
    table = NodeTable(toy_program)
    walker = ContextWalker(toy_program, table)
    log = EdgeLog(walker)
    total = walker.walk(trace, log, bulk=True)
    walker2 = ContextWalker(toy_program, table)
    log2 = EdgeLog(walker2)
    assert total == walker2.walk_scalar(trace, log2)
    assert log.log == log2.log  # entry open/close pairs still fire


def test_block_handler_forces_scalar(toy_program, toy_input):
    """A handler that observes blocks never takes the bulk path: every
    single block row must reach on_block, even with bulk forced."""
    trace = record_trace(Machine(toy_program, toy_input))
    table = NodeTable(toy_program)
    walker = ContextWalker(toy_program, table)
    log = BlockLog(walker)
    walker.walk(trace, log, bulk=True)
    blocks = [e for e in log.log if e[0] == "block"]
    assert len(blocks) == trace.num_block_events


def test_unknown_address_falls_back_to_scalar(toy_program, toy_input):
    """Rows referencing addresses outside the program replay through the
    scalar fallback rather than crashing or diverging."""
    trace = record_trace(Machine(toy_program, toy_input))
    bogus = Trace(
        trace.kinds.copy(), trace.a.copy(), trace.b.copy(), trace.c.copy()
    )
    rows = np.nonzero(bogus.kinds == K_BLOCK)[0]
    bogus.b[rows[len(rows) // 2]] = 0x7FFF_FFFF  # no such block address
    (s_total, s_log, _), (b_total, b_log, _) = both_walks(
        toy_program, bogus, EdgeLog
    )
    assert b_total == s_total
    assert b_log.log == s_log.log


def test_dispatch_threshold(toy_program, toy_input):
    """Default dispatch: long traces go bulk, short ones scalar — and
    both agree with the forced variants regardless."""
    trace = record_trace(Machine(toy_program, toy_input))
    assert len(trace) >= BULK_MIN_ROWS  # the fixture run is long enough
    table = NodeTable(toy_program)
    walker = ContextWalker(toy_program, table)
    auto = EdgeLog(walker)
    total_auto = walker.walk(trace, auto)
    walker2 = ContextWalker(toy_program, table)
    forced = EdgeLog(walker2)
    total_forced = walker2.walk(trace, forced, bulk=False)
    assert total_auto == total_forced
    assert auto.log == forced.log
