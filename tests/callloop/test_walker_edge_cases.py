"""Walker edge cases: tricky control-flow shapes the paper's binary-level
tracking must get right."""

from collections import defaultdict

import pytest

from repro.callloop.graph import NodeKind, NodeTable
from repro.callloop.profiler import CallLoopProfiler
from repro.engine import Machine, record_trace
from repro.ir import ProgramBuilder
from repro.ir.program import ProgramInput


def profile(program, seed=3):
    inp = ProgramInput("edge", {}, seed=seed)
    trace = record_trace(Machine(program, inp).run())
    graph = CallLoopProfiler(program).profile_trace(trace)
    return trace, graph


def edge_counts(graph):
    return {
        (str(e.src), str(e.dst)): e.count for e in graph.edges
    }


def test_loop_inside_if_branch():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("outer", trips=20):
            with b.if_(0.5):
                with b.loop("inner", trips=3):
                    b.code(5)
            with b.else_():
                b.code(4)
    prog = b.build()
    trace, graph = profile(prog)
    counts = edge_counts(graph)
    entries = counts.get(("main:outer[loop-body]", "main:inner[loop-head]"), 0)
    iters = counts.get(("main:inner[loop-head]", "main:inner[loop-body]"), 0)
    assert 0 < entries < 20  # only the taken executions enter the loop
    assert iters == entries * 3


def test_loop_as_entire_callee_body():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("calls", trips=6):
            b.call("f")
    with b.proc("f"):
        with b.loop("l", trips=4):
            b.code(3)
    prog = b.build()
    _, graph = profile(prog)
    counts = edge_counts(graph)
    assert counts[("f[body]", "f:l[loop-head]")] == 6
    assert counts[("f:l[loop-head]", "f:l[loop-body]")] == 24


def test_zero_trip_loop_never_entered():
    b = ProgramBuilder("p")
    with b.proc("main"):
        b.code(3)
        with b.loop("skipped", trips=0):
            b.code(5)
        with b.loop("taken", trips=2):
            b.code(5)
    prog = b.build()
    _, graph = profile(prog)
    labels = {n.label for n in graph.nodes}
    assert "skipped" not in labels  # zero-trip loop leaves no trace
    assert "taken" in labels


def test_back_to_back_sibling_loops_no_leakage():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("rounds", trips=5):
            with b.loop("a", trips=2):
                b.code(4)
            with b.loop("bb", trips=3):
                b.code(4)
    prog = b.build()
    _, graph = profile(prog)
    counts = edge_counts(graph)
    assert counts[("main:rounds[loop-body]", "main:a[loop-head]")] == 5
    assert counts[("main:rounds[loop-body]", "main:bb[loop-head]")] == 5
    assert counts[("main:a[loop-head]", "main:a[loop-body]")] == 10
    assert counts[("main:bb[loop-head]", "main:bb[loop-body]")] == 15
    # no a->b or b->a edges: siblings, not nested
    assert ("main:a[loop-body]", "main:bb[loop-head]") not in counts


def test_recursion_inside_loop():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l", trips=8):
            b.call("rec")
    with b.proc("rec"):
        b.code(3)
        with b.if_(0.5):
            b.call("rec")
    prog = b.build()
    _, graph = profile(prog)
    counts = edge_counts(graph)
    # head entered once per outermost activation = once per loop iteration
    assert counts[("main:l[loop-body]", "rec[head]")] == 8
    # body entered once per activation (>= outermost count)
    assert counts[("rec[head]", "rec[body]")] >= 8
    # when recursion occurred, the recursive body activations came
    # through the head->body edge without opening a second head span
    head_entries = counts[("main:l[loop-body]", "rec[head]")]
    assert counts[("rec[head]", "rec[body]")] >= head_entries


def test_call_as_last_statement_of_loop_body():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l", trips=4):
            b.code(2)
            b.call("f")
    with b.proc("f"):
        b.code(3)
    prog = b.build()
    _, graph = profile(prog)
    counts = edge_counts(graph)
    assert counts[("main:l[loop-body]", "f[head]")] == 4
    # iteration spans include the callee's instructions
    body_edge = next(
        e for e in graph.edges
        if str(e.src) == "main:l[loop-head]" and str(e.dst) == "main:l[loop-body]"
    )
    f_total = graph.program_name and sum(
        e.total for e in graph.edges if str(e.dst) == "f[head]"
    )
    assert body_edge.total >= f_total


def test_switch_cases_profiled():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l", trips=100):
            with b.switch([0.5, 0.5]) as sw:
                with sw.case():
                    b.call("x")
                with sw.case():
                    b.call("y")
    with b.proc("x"):
        b.code(3)
    with b.proc("y"):
        b.code(3)
    prog = b.build()
    _, graph = profile(prog)
    counts = edge_counts(graph)
    x = counts.get(("main:l[loop-body]", "x[head]"), 0)
    y = counts.get(("main:l[loop-body]", "y[head]"), 0)
    assert x + y == 100
    assert x > 10 and y > 10


def test_deeply_nested_loops():
    b = ProgramBuilder("p")
    with b.proc("main"):
        with b.loop("l0", trips=2):
            with b.loop("l1", trips=2):
                with b.loop("l2", trips=2):
                    with b.loop("l3", trips=2):
                        b.code(1)
    prog = b.build()
    trace, graph = profile(prog)
    counts = edge_counts(graph)
    assert counts[("main:l3[loop-head]", "main:l3[loop-body]")] == 16
    assert counts[("main:l2[loop-body]", "main:l3[loop-head]")] == 8
    assert graph.total_instructions == trace.total_instructions
