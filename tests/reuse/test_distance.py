"""Unit and property tests for reuse-distance computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reuse.distance import FenwickTree, bounded_log_distances, reuse_distances


def naive_reuse_distances(addresses, line_bytes=64):
    shift = line_bytes.bit_length() - 1
    lines = [a >> shift for a in addresses]
    out = []
    last = {}
    for t, line in enumerate(lines):
        if line not in last:
            out.append(np.inf)
        else:
            out.append(len(set(lines[last[line] + 1 : t])))
        last[line] = t
    return np.array(out)


class TestFenwick:
    def test_prefix_sums(self):
        t = FenwickTree(10)
        t.add(0, 5)
        t.add(3, 2)
        t.add(9, 1)
        assert t.prefix_sum(0) == 5
        assert t.prefix_sum(3) == 7
        assert t.prefix_sum(9) == 8

    def test_range_sum(self):
        t = FenwickTree(10)
        for i in range(10):
            t.add(i, 1)
        assert t.range_sum(2, 5) == 4
        assert t.range_sum(5, 2) == 0

    def test_negative_delta(self):
        t = FenwickTree(4)
        t.add(1, 3)
        t.add(1, -2)
        assert t.prefix_sum(3) == 1


class TestReuseDistance:
    def test_first_touch_infinite(self):
        d = reuse_distances(np.array([0, 64, 128]))
        assert np.isinf(d).all()

    def test_immediate_reuse_zero(self):
        d = reuse_distances(np.array([0, 0]))
        assert d[1] == 0

    def test_stack_pattern_closed_form(self):
        """Access 0..k then k..0: distance of the i-th return is the
        number of distinct lines touched in between."""
        k = 8
        forward = np.arange(k) * 64
        addresses = np.concatenate((forward, forward[::-1]))
        d = reuse_distances(addresses)
        # the second half: first re-access (of k-1) has distance 0,
        # next (k-2) distance 1, ... last (0) distance k-1
        assert d[k] == 0
        assert d[-1] == k - 1

    def test_same_line_different_bytes(self):
        d = reuse_distances(np.array([0, 32, 63]))
        assert np.isinf(d[0])
        assert d[1] == 0 and d[2] == 0

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 200),
        spread=st.integers(1, 40),
    )
    def test_matches_naive(self, seed, n, spread):
        rng = np.random.default_rng(seed)
        addresses = rng.integers(0, spread, size=n) * 64
        fast = reuse_distances(addresses)
        slow = naive_reuse_distances(addresses.tolist())
        finite = ~np.isinf(slow)
        assert (np.isinf(fast) == np.isinf(slow)).all()
        assert np.array_equal(fast[finite], slow[finite])

    def test_empty(self):
        assert len(reuse_distances(np.empty(0, dtype=np.int64))) == 0


class TestBoundedLog:
    def test_infinity_capped(self):
        d = np.array([np.inf, 0.0, 7.0])
        out = bounded_log_distances(d, cap=10.0)
        assert out[0] == 10.0
        assert out[1] == 0.0
        assert out[2] == pytest.approx(3.0)

    def test_monotone(self):
        d = np.array([1.0, 10.0, 100.0, np.inf])
        out = bounded_log_distances(d)
        assert (np.diff(out) >= 0).all()
