"""Unit and property tests for Sequitur grammar inference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reuse.sequitur import Grammar


def build(seq):
    return Grammar.from_sequence(seq)


class TestExpansion:
    @pytest.mark.parametrize(
        "seq",
        [
            "",
            "a",
            "ab",
            "aa",
            "aaa",
            "aaaa",
            "abab",
            "abcabc",
            "abcabcabcabc",
            "abracadabraabracadabra",
            "aabaaab",
            "abbbabcbb",
            "xyxyxzxyxyxz",
        ],
    )
    def test_expand_reproduces_input(self, seq):
        assert build(seq).expand() == list(seq)

    def test_non_string_symbols(self):
        seq = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        g = build(seq)
        assert g.expand() == seq


class TestInvariants:
    @settings(max_examples=150)
    @given(st.text(alphabet="abcd", max_size=120))
    def test_properties_hold(self, seq):
        g = build(seq)
        assert g.expand() == list(seq)
        assert g.check_digram_uniqueness()
        assert g.check_rule_utility()

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 3), max_size=150))
    def test_integer_sequences(self, seq):
        g = build(seq)
        assert g.expand() == seq
        assert g.check_digram_uniqueness()
        assert g.check_rule_utility()


class TestCompression:
    def test_periodic_compresses_well(self):
        g = build("abcde" * 100)
        assert g.compression_ratio > 10

    def test_random_compresses_poorly(self):
        import random

        rng = random.Random(7)
        noise = "".join(rng.choice("abcdefgh") for _ in range(500))
        g = build(noise)
        assert g.compression_ratio < 2.0

    def test_empty_ratio_one(self):
        assert build("").compression_ratio == 1.0

    def test_sequence_length_tracked(self):
        g = build("abcabc")
        assert g.sequence_length == 6

    def test_rules_include_start(self):
        g = build("abcabc")
        rules = g.rules()
        assert rules[0] is g.start
        assert len(rules) >= 2  # at least one discovered rule


class TestIncremental:
    def test_push_api(self):
        g = Grammar()
        for ch in "ababab":
            g.push(ch)
        assert g.expand() == list("ababab")
        assert g.check_digram_uniqueness()
