"""Unit tests for locality phase detection (the Shen baseline)."""

import numpy as np
import pytest

from repro.engine import Machine, MemorySystem, record_trace
from repro.ir import ProgramBuilder, NormalTrips, UniformTrips
from repro.ir.program import ProgramInput
from repro.reuse import (
    ReuseMarkerParams,
    select_reuse_markers,
    split_at_block_markers,
)


def regular_program():
    """Alternates a small working set with a streaming sweep — clean
    locality phases a reuse-distance detector should find."""
    b = ProgramBuilder("regular")
    with b.proc("main"):
        with b.loop("timestep", trips=12):
            with b.loop("small", trips=60):
                b.code(10, loads=6, mem=b.wset("hot", 1 << 12), label="phase_a")
            with b.loop("sweep", trips=60):
                b.code(
                    10,
                    loads=6,
                    mem=b.seq("stream", 1 << 22, stride=64),
                    label="phase_b",
                )
    return b.build()


def irregular_program():
    """gcc-like: random dispatch between working sets of random sizes —
    no repeating locality pattern."""
    b = ProgramBuilder("irregular")
    with b.proc("main"):
        with b.loop("units", trips=100):
            with b.switch([0.3, 0.25, 0.25, 0.2]) as sw:
                with sw.case():
                    with b.loop("l1", trips=UniformTrips(2, 60)):
                        b.code(10, loads=5, mem=b.wset("a", 1 << 17))
                with sw.case():
                    with b.loop("l2", trips=UniformTrips(2, 80)):
                        b.code(10, loads=5, mem=b.chase("b", 1 << 19))
                with sw.case():
                    with b.loop("l3", trips=UniformTrips(2, 40)):
                        b.code(10, loads=5, mem=b.wset("c", 1 << 13))
                with sw.case():
                    with b.loop("l4", trips=UniformTrips(1, 90)):
                        b.code(10, loads=5, mem=b.seq("d", 1 << 21))
    return b.build()


@pytest.fixture(scope="module")
def regular_run():
    prog = regular_program()
    inp = ProgramInput("i", seed=5)
    trace = record_trace(Machine(prog, inp).run())
    return prog, inp, trace


def test_finds_structure_in_regular_program(regular_run):
    prog, inp, trace = regular_run
    result = select_reuse_markers(trace, MemorySystem(prog, inp))
    assert result.structure_found, result.reason
    assert result.marker_blocks
    assert result.compression_ratio >= 1.5


def test_fails_on_irregular_program():
    prog = irregular_program()
    inp = ProgramInput("i", seed=5)
    trace = record_trace(Machine(prog, inp).run())
    result = select_reuse_markers(trace, MemorySystem(prog, inp))
    # the honest gcc/vortex failure mode: no repeating locality structure
    assert not result.structure_found


def test_too_few_accesses():
    b = ProgramBuilder("tiny")
    with b.proc("main"):
        b.code(10, loads=2)
    prog = b.build()
    inp = ProgramInput("i")
    trace = record_trace(Machine(prog, inp).run())
    result = select_reuse_markers(trace, MemorySystem(prog, inp))
    assert not result.structure_found
    assert "few" in result.reason


def test_split_at_block_markers_partitions(regular_run):
    prog, inp, trace = regular_run
    result = select_reuse_markers(trace, MemorySystem(prog, inp))
    s = split_at_block_markers(trace, result.marker_blocks, prog.name)
    s.check_partition(trace.total_instructions)
    assert len(s) >= 2


def test_split_min_interval_suppresses_fast_firing(regular_run):
    prog, inp, trace = regular_run
    result = select_reuse_markers(trace, MemorySystem(prog, inp))
    dense = split_at_block_markers(trace, result.marker_blocks, prog.name)
    sparse = split_at_block_markers(
        trace, result.marker_blocks, prog.name, min_interval=5000
    )
    assert len(sparse) <= len(dense)
    assert (sparse.lengths[1:-1] >= 5000).all() if len(sparse) > 2 else True


def test_describe(regular_run):
    prog, inp, trace = regular_run
    result = select_reuse_markers(trace, MemorySystem(prog, inp))
    assert "marker" in result.describe() or "structure" in result.describe()
