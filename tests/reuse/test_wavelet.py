"""Unit tests for Haar wavelet analysis."""

import numpy as np
import pytest

from repro.reuse.wavelet import (
    abrupt_changes,
    haar_decompose,
    haar_reconstruct,
    haar_smooth,
)


def test_roundtrip_power_of_two():
    rng = np.random.default_rng(0)
    signal = rng.normal(0, 1, 64)
    approx, details = haar_decompose(signal, 4)
    back = haar_reconstruct(approx, details)
    assert np.allclose(back, signal)


def test_roundtrip_with_padding():
    signal = np.arange(10.0)
    approx, details = haar_decompose(signal, 2)
    back = haar_reconstruct(approx, details)
    assert np.allclose(back[:10], signal)


def test_constant_signal_zero_details():
    signal = np.full(32, 5.0)
    _, details = haar_decompose(signal, 3)
    for d in details:
        assert np.allclose(d, 0.0)


def test_energy_preserved():
    rng = np.random.default_rng(1)
    signal = rng.normal(0, 1, 128)
    approx, details = haar_decompose(signal, 7)
    energy = (approx**2).sum() + sum((d**2).sum() for d in details)
    assert energy == pytest.approx((signal**2).sum())


def test_smooth_removes_noise_keeps_steps():
    rng = np.random.default_rng(2)
    steps = np.repeat([0.0, 10.0, 0.0, 10.0], 64)
    noisy = steps + rng.normal(0, 0.5, len(steps))
    smooth = haar_smooth(noisy, 3)
    # smoothed is closer to the clean steps than the noisy input on average
    assert np.abs(smooth - steps).mean() < np.abs(noisy - steps).mean() + 0.1


def test_levels_validation():
    with pytest.raises(ValueError):
        haar_decompose(np.zeros(8), 0)


class TestAbruptChanges:
    def test_detects_step(self):
        signal = np.concatenate((np.zeros(64), np.full(64, 20.0)))
        changes = abrupt_changes(signal, level=2, z_threshold=2.0)
        assert len(changes) >= 1
        # the detected change is near the step at 64
        assert any(abs(int(c) - 64) <= 8 for c in changes)

    def test_constant_signal_no_changes(self):
        signal = np.full(128, 3.0)
        assert len(abrupt_changes(signal)) == 0

    def test_smooth_ramp_no_changes(self):
        signal = np.linspace(0, 1, 256)
        assert len(abrupt_changes(signal, level=2, z_threshold=4.0)) == 0

    def test_empty(self):
        assert len(abrupt_changes(np.empty(0))) == 0

    def test_positions_in_range(self):
        rng = np.random.default_rng(3)
        signal = rng.normal(0, 1, 100)
        signal[50:] += 50
        changes = abrupt_changes(signal, level=1, z_threshold=2.0)
        assert (changes >= 0).all() and (changes < 100).all()
