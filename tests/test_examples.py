"""Keep the example scripts runnable (the lighter ones run in tests;
the heavier ones are exercised implicitly by the benchmark suite)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_custom_workload_example(capsys):
    out = run_example("custom_workload.py", capsys)
    assert "procedures + loops" in out
    assert "instrument at" in out


def test_online_reconfiguration_example(capsys):
    out = run_example("online_reconfiguration.py", capsys)
    assert "phase changes" in out
    assert "pre-staging hit rate" in out


def test_examples_all_present():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "adaptive_cache.py",
        "cross_binary_simpoints.py",
        "custom_workload.py",
        "online_reconfiguration.py",
    } <= names
