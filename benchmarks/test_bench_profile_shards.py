"""Profile-stage benchmark: Welford walk vs exact moments vs 4-shard walk.

``make bench-profile-shards`` times three implementations of the profile
stage over the 16-workload corpus (ref traces):

* **legacy** — the pre-segmentation handler (:class:`_GraphBuilder`):
  one Welford accumulation per edge traversal, sequential walk;
* **sequential** — the shipping default: exact integer moments
  (:class:`_MomentBuilder`) with batched back-edge runs, one walk;
* **sharded** — the same moments over 4 planned trace segments
  (``profile_trace(trace, shards=4)``, thread executor).

Gates, in order: the sharded graph must serialize **bit-identically** to
the sequential one on every workload (the exact-moment merge contract),
the legacy graph must agree on every integer quantity (float statistics
legitimately differ in the last ulps — Welford vs exact moments), and
the sharded profile stage must be >= 1.5x the legacy stage overall.
Numbers land in ``benchmarks/results/BENCH_profile_shards_*.json``.

``test_bench_profile_shards_smoke_regression`` is the CI guard: it
re-checks shard-merge bit-identity on two workloads and fails if
sharded profile throughput fell more than 20% below the committed
baseline JSON.
"""

import json
import time
from pathlib import Path

import pytest

from repro.callloop.profiler import CallLoopProfiler, _GraphBuilder
from repro.callloop.serialization import graph_to_dict
from repro.workloads import all_workloads

RESULTS = Path(__file__).parent / "results"

PROFILE_SHARDS = 4
VARIANTS = ("legacy", "sequential", "sharded")


def _legacy_profile(program, trace):
    """The pre-segmentation profile stage: per-traversal Welford adds."""
    profiler = CallLoopProfiler(program)
    builder = _GraphBuilder(profiler.graph, profiler.table)
    profiler.graph.total_instructions += profiler._walker.walk(trace, builder)
    return profiler.graph


def _moment_profile(program, trace, shards=None):
    profiler = CallLoopProfiler(program)
    profiler.profile_trace(trace, shards=shards)
    return profiler.graph


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _assert_legacy_agrees(legacy, sequential, spec):
    """Integer quantities exact; float stats differ only in the last ulps."""
    assert legacy.total_instructions == sequential.total_instructions, spec
    legacy_edges = {e.key(): e for e in legacy.edges}
    assert [e.key() for e in sequential.edges] == list(legacy_edges), spec
    for edge in sequential.edges:
        other = legacy_edges[edge.key()]
        assert edge.count == other.count, (spec, edge.key())
        assert edge.site_sources == other.site_sources, (spec, edge.key())
        for got, want in ((edge.avg, other.avg), (edge.max, other.max)):
            assert got == pytest.approx(want, rel=1e-9, abs=1e-9), (
                spec, edge.key(),
            )


def test_bench_profile_shards_speedup(runner, results_dir):
    seconds = {v: 0.0 for v in VARIANTS}
    total_instructions = 0
    per_workload = {}

    for workload in all_workloads():
        spec = workload.name
        program = runner.program(spec)
        trace = runner.trace(spec)

        legacy_s, legacy = _timed(lambda: _legacy_profile(program, trace))
        seq_s, sequential = _timed(lambda: _moment_profile(program, trace))
        shard_s, sharded = _timed(
            lambda: _moment_profile(program, trace, shards=PROFILE_SHARDS)
        )

        # bit-identity gate: the sharded merge must reproduce the
        # sequential graph exactly, not approximately
        assert graph_to_dict(sharded) == graph_to_dict(sequential), spec
        _assert_legacy_agrees(legacy, sequential, spec)

        seconds["legacy"] += legacy_s
        seconds["sequential"] += seq_s
        seconds["sharded"] += shard_s
        total_instructions += trace.total_instructions
        per_workload[spec] = {
            "legacy_seconds": legacy_s,
            "sequential_seconds": seq_s,
            "sharded_seconds": shard_s,
            "instructions": trace.total_instructions,
        }

    speedup = seconds["legacy"] / seconds["sharded"]
    common = {
        "benchmark": (
            "profile stage over 16-workload corpus (ref traces), "
            f"{PROFILE_SHARDS} shards"
        ),
        "total_instructions": total_instructions,
        "unit": "seconds (single pass per variant)",
    }
    (results_dir / "BENCH_profile_shards_legacy.json").write_text(
        json.dumps(
            {**common, "variant": "legacy (per-traversal Welford)",
             "seconds": seconds["legacy"]},
            indent=2,
        )
        + "\n"
    )
    (results_dir / "BENCH_profile_shards_sharded.json").write_text(
        json.dumps(
            {
                **common,
                "variant": f"sharded (exact moments, {PROFILE_SHARDS} segments)",
                "seconds": seconds["sharded"],
                "sequential_seconds": seconds["sequential"],
                "speedup_vs_legacy": speedup,
                "sequential_speedup_vs_legacy": (
                    seconds["legacy"] / seconds["sequential"]
                ),
                "instructions_per_second": total_instructions / seconds["sharded"],
                "per_workload": per_workload,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\nprofile: legacy {seconds['legacy']:.2f}s -> sequential "
        f"{seconds['sequential']:.2f}s -> sharded {seconds['sharded']:.2f}s "
        f"({speedup:.2f}x vs legacy)"
    )
    assert speedup >= 1.5


SMOKE_SPECS = ("gzip", "vortex")


def test_bench_profile_shards_smoke_regression(runner):
    """Shard-merge bit-identity plus a 20% throughput-regression gate
    against the committed ``BENCH_profile_shards_sharded.json``."""
    baseline_path = RESULTS / "BENCH_profile_shards_sharded.json"
    if not baseline_path.exists():
        pytest.skip(
            "no committed profile-shards baseline; "
            "run `make bench-profile-shards` first"
        )
    committed = json.loads(baseline_path.read_text())
    rows = [committed["per_workload"][name] for name in SMOKE_SPECS]
    baseline = sum(r["instructions"] for r in rows) / sum(
        r["sharded_seconds"] for r in rows
    )

    instructions = 0
    seconds = 0.0
    for spec in SMOKE_SPECS:
        program = runner.program(spec)
        trace = runner.trace(spec)
        sequential = _moment_profile(program, trace)
        # median of 3 to damp scheduler noise on shared CI runners
        times = []
        for _ in range(3):
            shard_s, sharded = _timed(
                lambda: _moment_profile(program, trace, shards=PROFILE_SHARDS)
            )
            times.append(shard_s)
            assert graph_to_dict(sharded) == graph_to_dict(sequential), spec
        instructions += trace.total_instructions
        seconds += sorted(times)[1]
    throughput = instructions / seconds
    print(
        f"\nprofile-shards smoke: {throughput / 1e6:.1f}M instr/s "
        f"(baseline {baseline / 1e6:.1f}M, floor {0.8 * baseline / 1e6:.1f}M)"
    )
    assert throughput >= 0.8 * baseline, (
        f"sharded profile regressed >20%: {throughput:.0f} instr/s vs "
        f"committed baseline {baseline:.0f}"
    )
