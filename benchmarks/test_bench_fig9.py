"""Benchmark: regenerate Figure 9 (CoV of CPI per phase)."""

from conftest import save_table

from repro.experiments import fig9
from repro.experiments.behavior import behavior_matrix, whole_program_baselines
from repro.util.tables import arithmetic_mean
from repro.workloads import SPEC_EVALUATION_SET


def test_bench_fig9(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: fig9.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "fig9_cov_cpi", table)

    matrix = behavior_matrix(runner)
    # headline claim: within-phase variation is much lower than whole-
    # program variability, for both BBV and marker classifications
    for spec in SPEC_EVALUATION_SET:
        whole = min(whole_program_baselines(runner, spec).values())
        for approach in ("BBV", "no limit self"):
            assert matrix[spec][approach].cov_cpi <= whole + 1e-9, (
                spec,
                approach,
            )
    avg_marker = arithmetic_mean(
        [matrix[s]["no limit self"].cov_cpi for s in SPEC_EVALUATION_SET]
    )
    avg_whole = arithmetic_mean(
        [min(whole_program_baselines(runner, s).values()) for s in SPEC_EVALUATION_SET]
    )
    assert avg_marker < avg_whole / 2
