"""Shared fixtures for the benchmark harness.

All benchmarks share one memoizing Runner so the workload traces,
call-loop graphs, and per-event metrics are computed once per session.
Each benchmark regenerates one of the paper's tables/figures, writes the
rendered table to ``benchmarks/results/``, and asserts the figure's
headline claim.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.runner import Runner

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: Path, name: str, table) -> None:
    text = table.render()
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
