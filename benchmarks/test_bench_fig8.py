"""Benchmark: regenerate Figure 8 (number of phases detected)."""

from conftest import save_table

from repro.experiments import fig8
from repro.experiments.behavior import behavior_matrix
from repro.util.tables import arithmetic_mean
from repro.workloads import SPEC_EVALUATION_SET


def test_bench_fig8(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: fig8.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "fig8_num_phases", table)

    matrix = behavior_matrix(runner)

    def avg(approach):
        return arithmetic_mean(
            [matrix[s][approach].num_phases for s in SPEC_EVALUATION_SET]
        )

    # headline claims: BBV detects the most phases; marker approaches
    # detect fewer; constraining interval size (limit) adds markers vs
    # procedures-only analysis
    assert avg("BBV") >= avg("no limit self")
    assert avg("no limit self") >= avg("procs no limit self")
    assert avg("limit 10-200m") >= avg("procs no limit self")
    # galgel's limit behavior: forced marking yields at least as many
    # phases at a much finer granularity (nested coincident markers
    # collapse to the innermost, so the unique-id count stays modest)
    galgel = matrix["galgel/ref"]
    assert galgel["limit 10-200m"].num_phases >= galgel["procs no limit self"].num_phases
    assert (
        galgel["limit 10-200m"].avg_interval_length
        < galgel["procs no limit self"].avg_interval_length
    )
