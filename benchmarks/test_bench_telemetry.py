"""Telemetry-overhead smoke check: instrumented runs stay within noise.

This is what ``make bench-telemetry`` runs.  Two checks:

* **Overhead gate** — the same small experiment (Figure 7 over one
  workload through the jobs=2 / profile-shards=2 path, fresh Runner
  each time so nothing is memoized) executed with telemetry disabled
  and enabled, min-of-3 wall clock each.  The enabled side runs the
  whole observability surface: span recording, cross-worker snapshot
  stitching, per-shard lane spans, and a live background metrics
  sampler.  The headline guarantee of the no-op fast path and the
  bulk-granularity instrumentation: **enabling it all costs < 10%**.

* **Critical-path reconciliation** — the ``repro stats
  --critical-path`` analyzer run over a telemetry session that timed
  the e2e pipeline stages (the same record/profile/select/split/bbv
  stage set ``BENCH_e2e_fast.json`` reports) must attribute to each
  stage the seconds a wall clock measured for it.
"""

import json
import time
from pathlib import Path

import pytest
from conftest import save_table

from repro.experiments import fig7
from repro.experiments.runner import Runner
from repro.telemetry import (
    MetricsSampler,
    analyze_critical_path,
    chrome_events,
    disable_telemetry,
    enable_telemetry,
    telemetry_session,
)
from repro.util.tables import Table

RESULTS = Path(__file__).parent / "results"

SPECS = ["gzip/graphic"]
PAIRS = [(spec, which) for spec in SPECS for which in ("ref", "train")]
REPEATS = 3
MAX_OVERHEAD = 0.10


def _run_once() -> float:
    start = time.perf_counter()
    runner = Runner(jobs=2, profile_shards=2)
    runner.prefetch_graphs(PAIRS)
    fig7.run(runner, specs=SPECS)
    return time.perf_counter() - start


def test_bench_telemetry_overhead(results_dir):
    off_runs, on_runs = [], []
    for _ in range(REPEATS):
        off_runs.append(_run_once())
        tm = enable_telemetry()
        sampler = MetricsSampler(tm, interval_s=0.01).start()
        try:
            on_runs.append(_run_once())
        finally:
            sampler.stop()
            disable_telemetry()
        # the enabled run exercised the whole surface being gated:
        assert tm.spans  # ...span recording
        assert sampler.samples()  # ...the background sampler
        assert any(  # ...and cross-worker stitching onto worker lanes
            label.startswith("worker ") for label in tm.lane_labels.values()
        )

    off, on = min(off_runs), min(on_runs)
    overhead = on / off - 1.0

    table = Table(
        f"Telemetry overhead: fig7 over {SPECS} "
        f"(jobs=2, shards=2, sampler on), min of {REPEATS}",
        ["mode", "wall seconds", "overhead %"],
        digits=3,
    )
    table.add_row(["telemetry off", off, 0.0])
    table.add_row(["telemetry on + sampler + stitching", on, overhead * 100.0])
    save_table(results_dir, "telemetry_overhead", table)

    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(off {off:.3f}s, on {on:.3f}s)"
    )


def test_bench_telemetry_critical_path_reconciles_stages(results_dir):
    """The analyzer's per-stage attribution matches wall-clock stage
    timings, over the same stage set ``BENCH_e2e_fast.json`` reports."""
    from repro.callloop import CallLoopProfiler, SelectionParams, select_markers
    from repro.engine import Machine, record_trace
    from repro.intervals import split_at_markers
    from repro.intervals.bbv import collect_bbvs
    from repro.workloads import get_workload

    workload = get_workload("gzip/graphic")
    program = workload.build()
    which = workload.ref_input

    stage_seconds = {}

    def staged(tm, stage, fn):
        start = time.perf_counter()
        with tm.span(stage):
            result = fn()
        stage_seconds[stage] = time.perf_counter() - start
        return result

    with telemetry_session() as tm:
        with tm.span("pipeline"):
            trace = staged(
                tm, "record", lambda: record_trace(Machine(program, which))
            )
            profiler = CallLoopProfiler(program)
            staged(tm, "profile", lambda: profiler.profile_trace(trace))
            markers = staged(
                tm,
                "select",
                lambda: select_markers(
                    profiler.graph, SelectionParams(ilower=10_000)
                ).markers,
            )
            intervals = staged(
                tm, "split", lambda: split_at_markers(program, trace, markers)
            )
            staged(
                tm,
                "bbv",
                lambda: collect_bbvs(intervals, trace, program.num_blocks),
            )

    report = analyze_critical_path(list(chrome_events(tm)))
    assert report is not None

    # the stage set is exactly what the committed e2e baseline reports
    baseline = json.loads((RESULTS / "BENCH_e2e_fast.json").read_text())
    assert set(stage_seconds) == set(baseline["stage_seconds"])

    table = Table(
        "Critical-path attribution vs wall clock: e2e stages over gzip/graphic",
        ["stage", "wall s", "attributed s", "delta %"],
        digits=4,
    )
    for stage, wall_s in stage_seconds.items():
        _, total_us, _ = report.attribution[f"pipeline/{stage}"]
        attributed_s = total_us / 1e6
        delta = abs(attributed_s - wall_s)
        table.add_row(
            [stage, wall_s, attributed_s, 100.0 * delta / max(wall_s, 1e-9)]
        )
        # the span-based attribution is the wall clock, give or take
        # span bookkeeping noise
        assert delta <= max(0.05, 0.15 * wall_s), (
            f"stage {stage}: analyzer attributes {attributed_s:.4f}s, "
            f"wall clock measured {wall_s:.4f}s"
        )
    save_table(results_dir, "telemetry_critical_path", table)

    # the critical path descends from the pipeline root into its
    # longest stage, and self+child time reconciles with the wall
    assert report.steps[0].path == "pipeline"
    longest = max(stage_seconds, key=stage_seconds.get)
    assert report.steps[1].name == longest
    assert report.wall_us / 1e6 == pytest.approx(
        sum(stage_seconds.values()), rel=0.15
    )
