"""Telemetry-overhead smoke check: instrumented runs stay within noise.

This is what ``make bench-telemetry`` runs: the same small experiment
(Figure 7 over one workload, fresh Runner each time so nothing is
memoized) executed with telemetry disabled and enabled, min-of-3 wall
clock each.  The headline guarantee of the no-op fast path and the
bulk-granularity instrumentation: **enabling telemetry costs < 10%**.
"""

import time

from conftest import save_table

from repro.experiments import fig7
from repro.experiments.runner import Runner
from repro.telemetry import disable_telemetry, enable_telemetry
from repro.util.tables import Table

SPECS = ["gzip/graphic"]
REPEATS = 3
MAX_OVERHEAD = 0.10


def _run_once() -> float:
    start = time.perf_counter()
    fig7.run(Runner(), specs=SPECS)
    return time.perf_counter() - start


def test_bench_telemetry_overhead(results_dir):
    off_runs, on_runs = [], []
    for _ in range(REPEATS):
        off_runs.append(_run_once())
        tm = enable_telemetry()
        try:
            on_runs.append(_run_once())
        finally:
            disable_telemetry()
        assert tm.spans  # the enabled run actually recorded telemetry

    off, on = min(off_runs), min(on_runs)
    overhead = on / off - 1.0

    table = Table(
        f"Telemetry overhead: fig7 over {SPECS}, min of {REPEATS}",
        ["mode", "wall seconds", "overhead %"],
        digits=3,
    )
    table.add_row(["telemetry off", off, 0.0])
    table.add_row(["telemetry on", on, overhead * 100.0])
    save_table(results_dir, "telemetry_overhead", table)

    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(off {off:.3f}s, on {on:.3f}s)"
    )
