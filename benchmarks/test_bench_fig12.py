"""Benchmark: regenerate Figure 12 (CPI error of simulation points)."""

from conftest import save_table

from repro.experiments import fig1112
from repro.util.tables import arithmetic_mean
from repro.workloads import SPEC_EVALUATION_SET


def test_bench_fig12(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: fig1112.run_fig12(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "fig12_cpi_error", table)

    def avg(config):
        return arithmetic_mean(
            [
                fig1112.cells_for(runner, s)[config].cpi_error
                for s in SPEC_EVALUATION_SET
            ]
        )

    # headline claim: VLI error is comparable to fixed-length SimPoint
    # (parity, not improvement, is the goal — Section 6.2)
    assert avg("VLI_99%") <= max(avg("SP_10M"), avg("SP_1M")) * 1.5
    assert avg("VLI_99%") < 0.05  # a few percent CPI error
    assert avg("VLI_100%") <= avg("VLI_95%") + 0.02
