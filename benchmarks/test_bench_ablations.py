"""Benchmarks: ablations of the selection algorithm's design choices."""

from conftest import save_table

from repro.callloop import SelectionParams, select_markers
from repro.experiments import ablations


def test_bench_ilower_sweep(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: ablations.run_ilower(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "ablation_ilower", table)
    # granularity control: larger ilower => fewer markers, longer intervals
    for spec in ablations.ILOWER_SPECS:
        graph = runner.graph(spec)
        counts = [
            len(select_markers(graph, SelectionParams(ilower=i)).markers)
            for i in ablations.ILOWER_SWEEP
        ]
        assert counts == sorted(counts, reverse=True), spec


def test_bench_cov_floor(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: ablations.run_cov_floor(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "ablation_cov_floor", table)
    # the floor matters on uniformly stable programs (swim) and is a
    # no-op on variable ones (gcc), which set their threshold from the
    # candidate population
    graph = runner.graph("swim/ref")
    without = select_markers(
        graph, SelectionParams(ilower=runner.config.ilower, cov_floor=0.0)
    ).markers
    with_floor = select_markers(
        graph, SelectionParams(ilower=runner.config.ilower, cov_floor=0.05)
    ).markers
    assert len(with_floor) > len(without)
    gcc = runner.graph("gcc/166")
    a = select_markers(gcc, SelectionParams(ilower=runner.config.ilower, cov_floor=0.0)).markers
    b = select_markers(gcc, SelectionParams(ilower=runner.config.ilower, cov_floor=0.05)).markers
    assert len(a) == len(b)


def test_bench_projection_dims(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: ablations.run_projection_dims(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "ablation_projection_dims", table)
    errors = [float(x) for x in table.column("CPI error (%)")]
    # 15 dimensions is no worse than 1 dimension; the curve plateaus
    assert errors[2] <= errors[0] + 0.5
