"""Smoke benchmark: one small experiment through the parallel, cached path.

This is what ``make bench-smoke`` runs (``pytest benchmarks -q -k smoke``):
Figure 7 over two workloads, three ways — serial, parallel with 2 jobs,
and warm-cache — asserting the headline guarantees of the execution
layer: parallel output is byte-identical to serial, and a warm-cache
re-run skips profiling entirely.
"""

import time

from conftest import save_table

from repro.experiments import fig7
from repro.experiments.runner import Runner
from repro.runner import ProfileCache
from repro.util.tables import Table

SPECS = ["gzip/graphic", "vortex/one"]
PAIRS = [(spec, which) for spec in SPECS for which in ("ref", "train")]


def test_bench_smoke_parallel_cached_experiment(results_dir, tmp_path):
    cache_dir = tmp_path / "profile-cache"

    start = time.perf_counter()
    serial = Runner()
    serial_table = fig7.run(serial, specs=SPECS).render()
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = Runner(cache=ProfileCache(cache_dir), jobs=2)
    parallel.prefetch_graphs(PAIRS)
    parallel_table = fig7.run(parallel, specs=SPECS).render()
    parallel_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = Runner(cache=ProfileCache(cache_dir))
    warm.prefetch_graphs(PAIRS)
    warm_table = fig7.run(warm, specs=SPECS).render()
    warm_s = time.perf_counter() - start

    # the guarantees: identical output, zero profiler passes when warm
    assert parallel_table == serial_table
    assert warm_table == serial_table
    assert warm.log.profiling_skipped()
    assert warm.cache.hits == len(PAIRS)
    assert warm.cache.misses == 0

    table = Table(
        f"Smoke: fig7 over {SPECS} — serial vs parallel vs warm cache",
        ["mode", "wall seconds", "graphs profiled", "cache hits"],
        digits=2,
    )
    table.add_row(["serial", serial_s, len(PAIRS), 0])
    table.add_row(["parallel (2 jobs)", parallel_s, len(PAIRS), 0])
    table.add_row(["warm cache", warm_s, 0, warm.cache.hits])
    save_table(results_dir, "smoke_parallel_cache", table)
    print(warm.run_summary().render())
