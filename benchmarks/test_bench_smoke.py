"""Smoke benchmark: one small experiment through the parallel, cached path.

This is what ``make bench-smoke`` runs (``pytest benchmarks -q -k smoke``):
Figure 7 over two workloads, three ways — serial, parallel with 2 jobs,
and warm-cache — asserting the headline guarantees of the execution
layer: parallel output is byte-identical to serial, and a warm-cache
re-run skips profiling entirely.

The parallel leg runs under a telemetry session with the background
sampler on, and exports the stitched multi-lane Chrome trace plus the
metrics time series into ``benchmarks/results/`` — CI uploads both as
artifacts, so every run leaves an inspectable timeline behind.
"""

import time

from conftest import save_table

from repro.experiments import fig7
from repro.experiments.runner import Runner
from repro.runner import ProfileCache
from repro.telemetry import (
    MetricsSampler,
    telemetry_session,
    write_jsonl,
    write_series_jsonl,
)
from repro.util.tables import Table

SPECS = ["gzip/graphic", "vortex/one"]
PAIRS = [(spec, which) for spec in SPECS for which in ("ref", "train")]


def test_bench_smoke_parallel_cached_experiment(results_dir, tmp_path):
    cache_dir = tmp_path / "profile-cache"

    start = time.perf_counter()
    serial = Runner()
    serial_table = fig7.run(serial, specs=SPECS).render()
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    with telemetry_session() as tm:
        with MetricsSampler(tm, interval_s=0.02) as sampler:
            parallel = Runner(cache=ProfileCache(cache_dir), jobs=2)
            parallel.prefetch_graphs(PAIRS)
            parallel_table = fig7.run(parallel, specs=SPECS).render()
    parallel_s = time.perf_counter() - start
    # the stitched trace and metrics series ride along as CI artifacts
    write_jsonl(tm, results_dir / "smoke_trace.jsonl")
    write_series_jsonl(
        sampler.samples(),
        results_dir / "smoke_series.jsonl",
        run_id=tm.run_id,
        interval_s=sampler.interval_s,
        dropped=sampler.dropped,
    )
    assert any(
        label.startswith("worker ") for label in tm.lane_labels.values()
    ), "parallel smoke run should stitch worker lanes into the trace"

    start = time.perf_counter()
    warm = Runner(cache=ProfileCache(cache_dir))
    warm.prefetch_graphs(PAIRS)
    warm_table = fig7.run(warm, specs=SPECS).render()
    warm_s = time.perf_counter() - start

    # the guarantees: identical output, zero profiler passes when warm
    assert parallel_table == serial_table
    assert warm_table == serial_table
    assert warm.log.profiling_skipped()
    assert warm.cache.hits == len(PAIRS)
    assert warm.cache.misses == 0

    table = Table(
        f"Smoke: fig7 over {SPECS} — serial vs parallel vs warm cache",
        ["mode", "wall seconds", "graphs profiled", "cache hits"],
        digits=2,
    )
    table.add_row(["serial", serial_s, len(PAIRS), 0])
    table.add_row(["parallel (2 jobs)", parallel_s, len(PAIRS), 0])
    table.add_row(["warm cache", warm_s, 0, warm.cache.hits])
    save_table(results_dir, "smoke_parallel_cache", table)
    print(warm.run_summary().render())
