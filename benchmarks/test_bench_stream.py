"""Streaming-pipeline cost gates: per-event overhead and bounded memory.

``make bench-stream`` checks the two claims that make streaming viable
(see docs/STREAMING.md):

* **per-event overhead** — feeding packed rows through the
  ``IncrementalWalker`` (and the full ``StreamingPhaseMonitor`` with a
  bounded window + drift detection on top) costs a small constant
  factor over the scalar batch walk of the same trace;
* **bounded memory** — with a bounded window, memory is flat over a
  stream many times the window length: the window never holds more
  than ``window_slots`` slot maps, and traced allocations stop growing
  once the window is full, while the unbounded configuration keeps
  accumulating.

The measured numbers land in ``benchmarks/results/BENCH_stream_*.json``;
the committed per-event baseline doubles as a regression floor
(throughput must stay within 2x), mirroring the e2e smoke gate.
"""

import json
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.callloop.graph import NodeTable
from repro.callloop.walker import ContextHandler, ContextWalker
from repro.engine import Machine, record_trace
from repro.streaming import (
    IncrementalWalker,
    StreamingConfig,
    StreamingPhaseMonitor,
)
from repro.workloads import get_workload

RESULTS = Path(__file__).parent / "results"

WORKLOAD = "gzip"
CHUNK_ROWS = 4096

# ceilings on the constant factor over the scalar batch walk (measured
# ~1.4x for the bare walker, ~2.0x for the full monitor; doubled-ish
# for CI noise)
WALKER_MAX_RATIO = 2.5
MONITOR_MAX_RATIO = 4.0


class _Null(ContextHandler):
    pass


def _train_trace():
    workload = get_workload(WORKLOAD)
    program = workload.build()
    return program, record_trace(Machine(program, workload.train_input))


def _vm_rss_kib():
    try:
        with open("/proc/self/status") as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def test_bench_stream_per_event_overhead(results_dir):
    program, trace = _train_trace()
    rows = len(trace)

    start = time.perf_counter()
    ContextWalker(program, NodeTable(program)).walk_scalar(trace, _Null())
    batch_s = time.perf_counter() - start

    start = time.perf_counter()
    walker = IncrementalWalker(program, NodeTable(program), handler=_Null())
    for chunk in trace.iter_chunks(CHUNK_ROWS):
        walker.feed_rows(*chunk)
    walker.finish()
    walker_s = time.perf_counter() - start

    start = time.perf_counter()
    monitor = StreamingPhaseMonitor(
        program,
        config=StreamingConfig(
            slot_instructions=5_000, window_slots=4, drift_threshold=0.25
        ),
    )
    monitor.feed_trace(trace, chunk_rows=CHUNK_ROWS)
    monitor.finish()
    monitor_s = time.perf_counter() - start

    walker_ratio = walker_s / batch_s
    monitor_ratio = monitor_s / batch_s
    throughput = rows / monitor_s

    baseline_path = RESULTS / "BENCH_stream_per_event.json"
    baseline = None
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())["monitor_rows_per_s"]

    (results_dir / "BENCH_stream_per_event.json").write_text(
        json.dumps(
            {
                "benchmark": (
                    "streaming per-event overhead vs scalar batch walk "
                    f"({WORKLOAD} train trace)"
                ),
                "rows": rows,
                "total_instructions": trace.total_instructions,
                "chunk_rows": CHUNK_ROWS,
                "batch_walk_s": batch_s,
                "incremental_walker_s": walker_s,
                "streaming_monitor_s": monitor_s,
                "walker_ratio": walker_ratio,
                "monitor_ratio": monitor_ratio,
                "monitor_rows_per_s": throughput,
                "unit": "seconds (single pass)",
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\nstream per-event: batch {batch_s * 1e3:.1f}ms, "
        f"walker {walker_ratio:.2f}x, monitor {monitor_ratio:.2f}x "
        f"({throughput / 1e6:.2f}M rows/s)"
    )
    assert walker_ratio <= WALKER_MAX_RATIO, (
        f"incremental walker costs {walker_ratio:.2f}x the batch walk "
        f"(ceiling {WALKER_MAX_RATIO}x)"
    )
    assert monitor_ratio <= MONITOR_MAX_RATIO, (
        f"streaming monitor costs {monitor_ratio:.2f}x the batch walk "
        f"(ceiling {MONITOR_MAX_RATIO}x)"
    )
    if baseline is not None:
        assert throughput >= baseline / 2.0, (
            f"streaming throughput regressed: {throughput:.0f} rows/s vs "
            f"committed baseline {baseline:.0f} (floor: half the baseline)"
        )


def _window_entries(monitor):
    """Slot maps resident in the window + live-slot edge entries."""
    return sum(len(slot) for slot in monitor.window.slot_maps())


def test_bench_stream_bounded_memory(results_dir):
    """Flat memory over a stream >= 10x the window length."""
    program, trace = _train_trace()
    slot_instructions = 5_000
    window_slots = 4
    window_span = slot_instructions * window_slots
    stream_factor = trace.total_instructions / window_span
    assert stream_factor >= 10, (
        f"stream must cover >= 10x the window; got {stream_factor:.1f}x"
    )

    def run(window):
        monitor = StreamingPhaseMonitor(
            program,
            config=StreamingConfig(
                slot_instructions=slot_instructions,
                window_slots=window,
                drift_threshold=0.25,
            ),
        )
        chunks = list(trace.iter_chunks(CHUNK_ROWS))
        warmup = max(1, len(chunks) // 4)
        traced = []
        entries = []
        tracemalloc.start()
        try:
            for i, chunk in enumerate(chunks):
                monitor.feed_rows(*chunk)
                if i >= warmup:
                    traced.append(tracemalloc.get_traced_memory()[0])
                    entries.append(_window_entries(monitor))
            monitor.finish()
        finally:
            tracemalloc.stop()
        return monitor, traced, entries

    bounded, traced, entries = run(window_slots)
    unbounded, _, unbounded_entries = run(0)

    assert bounded.window.evicted_slots > 0
    assert bounded.window.num_slots <= window_slots
    # the structural bound: resident edge entries are capped by the
    # window, while the unbounded run keeps accumulating slots
    assert max(entries) < max(unbounded_entries)
    assert unbounded.window.num_slots > window_slots

    # traced allocations are flat once the window is full: the second
    # half of the stream adds no more than a small slack over the first
    # post-warmup measurement (phase-change/reselection logs are tiny)
    half = len(traced) // 2
    early_kib = max(traced[:half]) / 1024
    late_kib = max(traced[half:]) / 1024
    growth_kib = late_kib - early_kib
    rss_kib = _vm_rss_kib()

    (results_dir / "BENCH_stream_memory.json").write_text(
        json.dumps(
            {
                "benchmark": (
                    "streaming bounded-memory check "
                    f"({WORKLOAD} train trace, window {window_slots} x "
                    f"{slot_instructions} instructions)"
                ),
                "stream_over_window_factor": stream_factor,
                "slots_sealed": bounded.slots_sealed,
                "slots_evicted": bounded.window.evicted_slots,
                "max_window_entries_bounded": max(entries),
                "max_window_entries_unbounded": max(unbounded_entries),
                "traced_early_peak_kib": early_kib,
                "traced_late_peak_kib": late_kib,
                "traced_growth_kib": growth_kib,
                "vm_rss_kib": rss_kib,
                "unit": "KiB (tracemalloc traced allocations)",
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\nstream memory: {stream_factor:.1f}x window, "
        f"{bounded.window.evicted_slots} slots evicted, traced "
        f"{early_kib:.0f} -> {late_kib:.0f} KiB (+{growth_kib:.0f}), "
        f"entries {max(entries)} bounded vs {max(unbounded_entries)} unbounded"
    )
    assert growth_kib <= 64, (
        f"traced memory grew {growth_kib:.0f} KiB over the second half of "
        "the stream — the bounded window should hold it flat"
    )
