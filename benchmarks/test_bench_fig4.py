"""Benchmark: regenerate Figure 4 (cross-ISA markers on gzip)."""

from conftest import save_table

from repro.experiments import fig4


def test_bench_fig4(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: fig4.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "fig4_cross_isa_gzip", table)
    result = fig4.run_analysis(runner)
    # headline claims: every marker maps via source, fires identically,
    # and still tracks the behavior transitions on the other binary
    assert result.unmapped_markers == 0
    assert result.sequence_identical
    assert result.x86_alignment >= 0.9
