"""End-to-end trace-pipeline benchmark: legacy vs chunked-columnar paths.

``make bench-e2e`` runs the whole record -> profile -> select -> split ->
BBV pipeline over the 16-workload corpus twice:

* **legacy** — the pre-pipeline implementations: object-yielding
  ``Machine.run()`` recording, the scalar event-by-event walker (bulk
  replay disabled), the scalar per-event VLI splitter, and
  ``np.add.at`` BBV accumulation;
* **fast** — the shipping defaults: the zero-object columnar recorder,
  bulk replay, the sparsity-aware split (vectorized candidate
  pre-scan), and the flattened-bincount BBV accumulator.

Every workload's outputs are asserted bit-identical between the two
sides before the timings count, then the numbers land in
``benchmarks/results/BENCH_e2e_*.json``.  The headline claim is a >= 3x
end-to-end speedup.

``test_bench_smoke_e2e_throughput_regression`` is the cheap guard that
rides in ``make bench-smoke``: it re-measures the fast pipeline on two
workloads and fails if throughput fell more than 2x below the committed
baseline JSON.
"""

import json
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

import repro.callloop.walker as walker_mod
from repro.callloop import CallLoopProfiler, SelectionParams, select_markers
from repro.engine import Machine, record_trace
from repro.engine.events import K_BLOCK
from repro.intervals import split_at_markers, split_at_markers_scalar
from repro.intervals.bbv import collect_bbvs
from repro.workloads import all_workloads

RESULTS = Path(__file__).parent / "results"

STAGES = ("record", "profile", "select", "split", "bbv")


@contextmanager
def scalar_walks():
    """Disable bulk replay (the legacy walker) for the duration."""
    saved = walker_mod.BULK_MIN_ROWS
    walker_mod.BULK_MIN_ROWS = float("inf")
    try:
        yield
    finally:
        walker_mod.BULK_MIN_ROWS = saved


def _bbvs_add_at(interval_set, trace, num_blocks):
    """The pre-pipeline BBV accumulator (np.add.at), kept as the legacy
    side of the benchmark; numerically identical to the bincount path."""
    n = len(interval_set)
    bbvs = np.zeros((n, num_blocks), dtype=np.float64)
    if n == 0:
        return bbvs
    mask = trace.kinds == K_BLOCK
    rows = np.nonzero(mask)[0]
    idx = np.searchsorted(interval_set.row_bounds, rows, side="right") - 1
    valid = (idx >= 0) & (idx < n)
    np.add.at(bbvs, (idx[valid], trace.a[rows][valid]), trace.c[rows][valid])
    return bbvs


def _pipeline(program, program_input, params, fast):
    """One workload through the full pipeline; returns (stage seconds,
    outputs for the bit-identity cross-check)."""
    times = {}

    start = time.perf_counter()
    source = Machine(program, program_input)
    trace = record_trace(source if fast else source.run())
    times["record"] = time.perf_counter() - start

    start = time.perf_counter()
    graph = CallLoopProfiler(program).profile_trace(trace)
    times["profile"] = time.perf_counter() - start

    start = time.perf_counter()
    markers = select_markers(graph, params).markers
    times["select"] = time.perf_counter() - start

    start = time.perf_counter()
    if fast:
        intervals = split_at_markers(program, trace, markers)
    else:
        intervals = split_at_markers_scalar(program, trace, markers)
    times["split"] = time.perf_counter() - start

    start = time.perf_counter()
    if fast:
        bbvs = collect_bbvs(intervals, trace, program.num_blocks)
    else:
        bbvs = _bbvs_add_at(intervals, trace, program.num_blocks)
    times["bbv"] = time.perf_counter() - start

    return times, trace, graph, intervals, bbvs


def test_bench_e2e_pipeline_speedup(runner, results_dir):
    params = SelectionParams(ilower=runner.config.ilower)
    legacy = {s: 0.0 for s in STAGES}
    fast = {s: 0.0 for s in STAGES}
    total_instructions = 0
    per_workload = {}

    for workload in all_workloads():
        program = workload.build()
        program_input = workload.ref_input
        with scalar_walks():
            lt, l_trace, l_graph, l_iv, l_bbvs = _pipeline(
                program, program_input, params, fast=False
            )
        ft, f_trace, f_graph, f_iv, f_bbvs = _pipeline(
            program, program_input, params, fast=True
        )
        for s in STAGES:
            legacy[s] += lt[s]
            fast[s] += ft[s]
        total_instructions += f_trace.total_instructions
        per_workload[workload.name] = {
            "seconds": sum(ft.values()),
            "instructions": f_trace.total_instructions,
        }

        # bit-identity gate: the speedup only counts if the fast
        # pipeline produces byte-for-byte the legacy outputs
        for name in ("kinds", "a", "b", "c"):
            assert np.array_equal(
                getattr(f_trace, name), getattr(l_trace, name)
            ), f"{workload.spec_name}: trace column {name}"
        assert f_graph.total_instructions == l_graph.total_instructions
        assert np.array_equal(f_iv.row_bounds, l_iv.row_bounds)
        assert np.array_equal(f_iv.phase_ids, l_iv.phase_ids)
        assert np.array_equal(f_bbvs, l_bbvs), workload.spec_name

    legacy_s = sum(legacy.values())
    fast_s = sum(fast.values())
    speedup = legacy_s / fast_s

    common = {
        "benchmark": "end-to-end pipeline over 16-workload corpus (ref inputs)",
        "stages": list(STAGES),
        "total_instructions": total_instructions,
        "unit": "seconds (single pass, per-stage breakdown)",
    }
    (results_dir / "BENCH_e2e_legacy.json").write_text(
        json.dumps(
            {**common, "pipeline": "legacy", "seconds": legacy_s,
             "stage_seconds": legacy},
            indent=2,
        )
        + "\n"
    )
    (results_dir / "BENCH_e2e_fast.json").write_text(
        json.dumps(
            {
                **common,
                "pipeline": "fast",
                "seconds": fast_s,
                "stage_seconds": fast,
                "speedup_vs_legacy": speedup,
                "stage_speedups": {
                    s: legacy[s] / fast[s] if fast[s] else float("inf")
                    for s in STAGES
                },
                "instructions_per_second": total_instructions / fast_s,
                "per_workload": per_workload,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\ne2e: legacy {legacy_s:.2f}s -> fast {fast_s:.2f}s ({speedup:.2f}x); "
        + ", ".join(f"{s} {legacy[s] / fast[s]:.1f}x" for s in STAGES)
    )
    assert speedup >= 3.0


SMOKE_SPECS = ("gzip", "vortex")


def test_bench_smoke_e2e_throughput_regression(runner):
    """Fast-pipeline throughput must stay within 2x of the committed
    baseline (``BENCH_e2e_fast.json``)."""
    baseline_path = RESULTS / "BENCH_e2e_fast.json"
    if not baseline_path.exists():
        pytest.skip("no committed e2e baseline; run `make bench-e2e` first")
    committed = json.loads(baseline_path.read_text())
    # compare against the same two workloads' committed numbers, not the
    # corpus-wide average (per-workload throughput varies several-fold)
    rows = [committed["per_workload"][name] for name in SMOKE_SPECS]
    baseline = sum(r["instructions"] for r in rows) / sum(
        r["seconds"] for r in rows
    )

    params = SelectionParams(ilower=runner.config.ilower)
    instructions = 0
    seconds = 0.0
    for workload in all_workloads():
        if workload.name not in SMOKE_SPECS:
            continue
        times, trace, *_ = _pipeline(
            workload.build(), workload.ref_input, params, fast=True
        )
        instructions += trace.total_instructions
        seconds += sum(times.values())
    throughput = instructions / seconds
    print(
        f"\ne2e smoke: {throughput / 1e6:.1f}M instr/s "
        f"(baseline {baseline / 1e6:.1f}M, floor {baseline / 2 / 1e6:.1f}M)"
    )
    assert throughput >= baseline / 2.0, (
        f"fast pipeline regressed: {throughput:.0f} instr/s vs committed "
        f"baseline {baseline:.0f} (allowed floor: half the baseline)"
    )
