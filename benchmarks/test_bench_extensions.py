"""Benchmarks: the paper's stated future work, made quantitative."""

from conftest import save_table

from repro.experiments import extensions
from repro.util.tables import arithmetic_mean


def test_bench_cross_binary_points(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: extensions.run_xbin_points(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "ext_cross_binary_points", table)
    # simulation points transferred to recompiled binaries estimate the
    # *target* binary's CPI to within a few percent
    for column in ("base error (%)", "-O0 error (%)", "peak error (%)"):
        errors = [float(x) for x in table.column(column)]
        assert arithmetic_mean(errors) < 5.0, column
        assert max(errors) < 10.0, column


def test_bench_hardware_bbv(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: extensions.run_hardware_bbv(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "ext_hardware_bbv", table)
    # the paper's approximation claim: ideal SimPoint is a good stand-in
    # for the hardware BBV classifier — the cache sizes each yields agree
    offline = [float(x) for x in table.column("cache KB (SimPoint)")]
    online = [float(x) for x in table.column("cache KB (online)")]
    for a, b in zip(offline, online):
        assert abs(a - b) / max(a, b) < 0.15


def test_bench_detection_comparison(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: extensions.run_detection_comparison(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "ext_detection_comparison", table)
    # all three detector families see the same phase boundaries — the
    # Dhodapkar & Smith comparison result
    for column in ("wset F1", "bbv F1"):
        f1 = [float(x) for x in table.column(column)]
        assert arithmetic_mean(f1) > 0.7, column


def test_bench_phase_prediction(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: extensions.run_prediction(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "ext_phase_prediction", table)
    markov = [float(x) for x in table.column("Markov-1")]
    last = [float(x) for x in table.column("last phase")]
    # at phase transitions, last-phase prediction is useless by
    # construction while Markov exploits the repeating marker sequence
    assert arithmetic_mean(markov) > 70.0
    assert arithmetic_mean(markov) > arithmetic_mean(last) + 50.0
