"""Benchmark: regenerate Figure 3 (time-varying gzip behavior + markers)."""

from conftest import save_table

from repro.experiments import fig3


def test_bench_fig3(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: fig3.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "fig3_time_varying_gzip", table)
    series = fig3.series(runner)
    # headline claim: markers land on the visible behavior transitions
    assert series.transition_alignment() >= 0.9
    assert len(series.firings) > 10
