"""Substrate throughput benchmarks (multi-round, statistical).

Unlike the figure benchmarks (one-shot table regenerations), these
measure the hot paths of the library itself — useful when tuning the
profiler or cache simulator.
"""

import json
import time

import pytest

from repro.callloop import CallLoopProfiler
from repro.callloop.graph import NodeTable
from repro.cache.stackdist import MultiAssocCacheSim
from repro.intervals import split_at_markers, split_fixed
from repro.intervals.bbv import collect_bbvs

SPEC = "vortex/one"


@pytest.fixture(scope="module")
def prepared(runner):
    program = runner.program(SPEC)
    trace = runner.trace(SPEC)
    markers = runner.markers(SPEC, "nolimit-self")
    memory = runner.memory(SPEC)
    return program, trace, markers, memory


def test_bench_profiler_throughput(benchmark, prepared):
    program, trace, _, _ = prepared

    def profile():
        return CallLoopProfiler(program).profile_trace(trace)

    graph = benchmark(profile)
    rate = trace.total_instructions / benchmark.stats["mean"]
    print(f"\nprofiler: {rate / 1e6:.1f}M instructions/s")
    assert graph.total_instructions == trace.total_instructions


def test_bench_profile_cache_roundtrip(benchmark, runner, tmp_path):
    """Store + load one profile through the on-disk cache.

    This is the warm-cache fast path; compare its mean against
    ``test_bench_profiler_throughput`` to see what a cache hit saves
    (a JSON load vs a full trace walk)."""
    import json

    from repro.callloop.serialization import graph_to_dict
    from repro.runner import ProfileCache

    graph = runner.graph(SPEC)
    cache = ProfileCache(tmp_path / "cache")
    key = cache.graph_key(SPEC, "ref", runner.input_for(SPEC, "ref"))

    def roundtrip():
        cache.store_graph(key, graph)
        return cache.load_graph(key)

    loaded = benchmark(roundtrip)
    assert json.dumps(graph_to_dict(loaded), sort_keys=True) == json.dumps(
        graph_to_dict(graph), sort_keys=True
    )


def test_bench_vli_split_throughput(benchmark, prepared):
    program, trace, markers, _ = prepared
    intervals = benchmark(lambda: split_at_markers(program, trace, markers))
    intervals.check_partition(trace.total_instructions)


def test_bench_fixed_split_and_bbv(benchmark, prepared):
    program, trace, _, _ = prepared

    def run():
        intervals = split_fixed(trace, 10_000, program.name)
        collect_bbvs(intervals, trace, program.num_blocks)
        return intervals

    intervals = benchmark(run)
    assert len(intervals) > 10


def test_bench_perf_kernel_throughput(results_dir):
    """Vectorized vs scalar selection on one synthetic many-edge graph.

    The corpus graphs top out at a few hundred edges; this layered
    synthetic graph (~4k edges) shows the kernels' headroom where the
    per-edge Python loop cost dominates.  Results are committed as
    ``BENCH_throughput.json``."""
    import numpy as np

    from repro.callloop import SelectionParams, select_markers, select_markers_scalar
    from repro.callloop.graph import CallLoopGraph, Node, NodeKind, ROOT
    from repro.callloop.stats import RunningStats

    rng = np.random.default_rng(1234)
    graph = CallLoopGraph("synthetic")
    layers = [
        [
            Node(NodeKind.PROC_HEAD, f"l{d}_p{i}", label=f"l{d}_p{i}")
            for i in range(40)
        ]
        for d in range(8)
    ]
    for node in layers[0]:
        graph.edge(ROOT, node).stats = RunningStats(
            count=1, mean=1e7, m2=0.0, max_value=1e7
        )
    for depth in range(len(layers) - 1):
        for src in layers[depth]:
            for dst in rng.choice(layers[depth + 1], size=13, replace=False):
                # log-uniform interval sizes: with ilower=60k only a few
                # percent of edges are candidates, so the benchmark
                # measures the pass filters, not marker materialization
                mean = float(10.0 ** rng.uniform(2.0, 5.0))
                count = int(rng.integers(2, 50))
                graph.edge(src, dst).stats = RunningStats(
                    count=count,
                    mean=mean,
                    m2=float(rng.uniform(0, 0.2)) * mean * mean * count,
                    max_value=mean * 2,
                )
    params = SelectionParams(ilower=60_000)

    def best_of(engine, rounds=5):
        engine(graph, params)  # warm caches / allocator
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            engine(graph, params)
            best = min(best, time.perf_counter() - start)
        return best

    scalar_s = best_of(select_markers_scalar)
    vector_s = best_of(select_markers)
    speedup = scalar_s / vector_s

    vec = select_markers(graph, params)
    ref = select_markers_scalar(graph, params)
    assert [m.edge_key for m in vec.markers] == [m.edge_key for m in ref.markers]

    (results_dir / "BENCH_throughput.json").write_text(
        json.dumps(
            {
                "benchmark": "selection on synthetic graph",
                "num_edges": graph.num_edges,
                "unit": "seconds per selection (best of 5)",
                "scalar_seconds": scalar_s,
                "vectorized_seconds": vector_s,
                "speedup_vs_scalar": speedup,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\nkernels ({graph.num_edges} edges): scalar {scalar_s * 1e3:.2f}ms -> "
        f"vectorized {vector_s * 1e3:.2f}ms ({speedup:.1f}x)"
    )
    assert speedup >= 3.0


def test_bench_cache_sim_throughput(benchmark, prepared):
    _, trace, _, memory = prepared
    memory.reset()
    addresses = memory.addresses_for_blocks(trace.block_ids()[:100_000])

    def simulate():
        sim = MultiAssocCacheSim(num_sets=512, line_bytes=64, max_ways=8)
        sim.access_many(addresses)
        return sim

    sim = benchmark(simulate)
    rate = len(addresses) / benchmark.stats["mean"]
    print(f"\ncache sim: {rate / 1e6:.2f}M accesses/s (all 8 ways at once)")
    assert sim.accesses == len(addresses)
