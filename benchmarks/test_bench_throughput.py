"""Substrate throughput benchmarks (multi-round, statistical).

Unlike the figure benchmarks (one-shot table regenerations), these
measure the hot paths of the library itself — useful when tuning the
profiler or cache simulator.
"""

import pytest

from repro.callloop import CallLoopProfiler
from repro.callloop.graph import NodeTable
from repro.cache.stackdist import MultiAssocCacheSim
from repro.intervals import split_at_markers, split_fixed
from repro.intervals.bbv import collect_bbvs

SPEC = "vortex/one"


@pytest.fixture(scope="module")
def prepared(runner):
    program = runner.program(SPEC)
    trace = runner.trace(SPEC)
    markers = runner.markers(SPEC, "nolimit-self")
    memory = runner.memory(SPEC)
    return program, trace, markers, memory


def test_bench_profiler_throughput(benchmark, prepared):
    program, trace, _, _ = prepared

    def profile():
        return CallLoopProfiler(program).profile_trace(trace)

    graph = benchmark(profile)
    rate = trace.total_instructions / benchmark.stats["mean"]
    print(f"\nprofiler: {rate / 1e6:.1f}M instructions/s")
    assert graph.total_instructions == trace.total_instructions


def test_bench_vli_split_throughput(benchmark, prepared):
    program, trace, markers, _ = prepared
    intervals = benchmark(lambda: split_at_markers(program, trace, markers))
    intervals.check_partition(trace.total_instructions)


def test_bench_fixed_split_and_bbv(benchmark, prepared):
    program, trace, _, _ = prepared

    def run():
        intervals = split_fixed(trace, 10_000, program.name)
        collect_bbvs(intervals, trace, program.num_blocks)
        return intervals

    intervals = benchmark(run)
    assert len(intervals) > 10


def test_bench_cache_sim_throughput(benchmark, prepared):
    _, trace, _, memory = prepared
    memory.reset()
    addresses = memory.addresses_for_blocks(trace.block_ids()[:100_000])

    def simulate():
        sim = MultiAssocCacheSim(num_sets=512, line_bytes=64, max_ways=8)
        sim.access_many(addresses)
        return sim

    sim = benchmark(simulate)
    rate = len(addresses) / benchmark.stats["mean"]
    print(f"\ncache sim: {rate / 1e6:.2f}M accesses/s (all 8 ways at once)")
    assert sim.accesses == len(addresses)
