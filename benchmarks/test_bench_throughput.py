"""Substrate throughput benchmarks (multi-round, statistical).

Unlike the figure benchmarks (one-shot table regenerations), these
measure the hot paths of the library itself — useful when tuning the
profiler or cache simulator.
"""

import pytest

from repro.callloop import CallLoopProfiler
from repro.callloop.graph import NodeTable
from repro.cache.stackdist import MultiAssocCacheSim
from repro.intervals import split_at_markers, split_fixed
from repro.intervals.bbv import collect_bbvs

SPEC = "vortex/one"


@pytest.fixture(scope="module")
def prepared(runner):
    program = runner.program(SPEC)
    trace = runner.trace(SPEC)
    markers = runner.markers(SPEC, "nolimit-self")
    memory = runner.memory(SPEC)
    return program, trace, markers, memory


def test_bench_profiler_throughput(benchmark, prepared):
    program, trace, _, _ = prepared

    def profile():
        return CallLoopProfiler(program).profile_trace(trace)

    graph = benchmark(profile)
    rate = trace.total_instructions / benchmark.stats["mean"]
    print(f"\nprofiler: {rate / 1e6:.1f}M instructions/s")
    assert graph.total_instructions == trace.total_instructions


def test_bench_profile_cache_roundtrip(benchmark, runner, tmp_path):
    """Store + load one profile through the on-disk cache.

    This is the warm-cache fast path; compare its mean against
    ``test_bench_profiler_throughput`` to see what a cache hit saves
    (a JSON load vs a full trace walk)."""
    import json

    from repro.callloop.serialization import graph_to_dict
    from repro.runner import ProfileCache

    graph = runner.graph(SPEC)
    cache = ProfileCache(tmp_path / "cache")
    key = cache.graph_key(SPEC, "ref", runner.input_for(SPEC, "ref"))

    def roundtrip():
        cache.store_graph(key, graph)
        return cache.load_graph(key)

    loaded = benchmark(roundtrip)
    assert json.dumps(graph_to_dict(loaded), sort_keys=True) == json.dumps(
        graph_to_dict(graph), sort_keys=True
    )


def test_bench_vli_split_throughput(benchmark, prepared):
    program, trace, markers, _ = prepared
    intervals = benchmark(lambda: split_at_markers(program, trace, markers))
    intervals.check_partition(trace.total_instructions)


def test_bench_fixed_split_and_bbv(benchmark, prepared):
    program, trace, _, _ = prepared

    def run():
        intervals = split_fixed(trace, 10_000, program.name)
        collect_bbvs(intervals, trace, program.num_blocks)
        return intervals

    intervals = benchmark(run)
    assert len(intervals) > 10


def test_bench_cache_sim_throughput(benchmark, prepared):
    _, trace, _, memory = prepared
    memory.reset()
    addresses = memory.addresses_for_blocks(trace.block_ids()[:100_000])

    def simulate():
        sim = MultiAssocCacheSim(num_sets=512, line_bytes=64, max_ways=8)
        sim.access_many(addresses)
        return sim

    sim = benchmark(simulate)
    rate = len(addresses) / benchmark.stats["mean"]
    print(f"\ncache sim: {rate / 1e6:.2f}M accesses/s (all 8 ways at once)")
    assert sim.accesses == len(addresses)
