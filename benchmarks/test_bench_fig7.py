"""Benchmark: regenerate Figure 7 (average instructions per interval)."""

from conftest import save_table

from repro.experiments import fig7
from repro.experiments.behavior import behavior_matrix
from repro.util.tables import arithmetic_mean
from repro.workloads import SPEC_EVALUATION_SET


def test_bench_fig7(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: fig7.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "fig7_avg_interval_length", table)

    matrix = behavior_matrix(runner)
    cfg = runner.config

    def avg(approach):
        return arithmetic_mean(
            [matrix[s][approach].avg_interval_length for s in SPEC_EVALUATION_SET]
        )

    # headline claims: procedures alone give far coarser intervals than
    # procedures+loops; the limit run is bounded by [ilower, max-limit]
    assert avg("procs no limit self") > 1.5 * avg("no limit self")
    assert avg("procs no limit cross") >= avg("procs no limit self")
    assert cfg.ilower * 0.5 <= avg("limit 10-200m") <= cfg.max_limit
    for spec in SPEC_EVALUATION_SET:
        assert abs(
            matrix[spec]["BBV"].avg_interval_length - cfg.bbv_interval
        ) < cfg.bbv_interval * 0.1
