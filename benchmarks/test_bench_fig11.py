"""Benchmark: regenerate Figure 11 (simulated instructions)."""

from conftest import save_table

from repro.experiments import fig1112
from repro.util.tables import arithmetic_mean
from repro.workloads import SPEC_EVALUATION_SET


def test_bench_fig11(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: fig1112.run_fig11(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "fig11_simulated_instructions", table)

    def avg(config):
        return arithmetic_mean(
            [
                fig1112.cells_for(runner, s)[config].simulated_instructions
                for s in SPEC_EVALUATION_SET
            ]
        )

    # headline claims: simulation cost grows with fixed interval size,
    # and the VLI 99% configuration costs about the same as SP_10M
    assert avg("SP_1M") < avg("SP_10M") < avg("SP_100M")
    assert avg("SP_10M") / 4 <= avg("VLI_99%") <= avg("SP_10M") * 4
    assert avg("VLI_95%") <= avg("VLI_99%") <= avg("VLI_100%")
