"""Split-stage benchmark: scalar splitter vs pre-scan vs segmented walk.

``make bench-split`` times three implementations of marker application
(the VLI split) over the 16-workload corpus (ref traces):

* **legacy** — the scalar per-event splitter
  (:func:`split_at_markers_scalar`): one Python-level callback per
  trace event, the oracle every fast path is diffed against;
* **fast** — the shipping default (:func:`split_at_markers`): the
  vectorized candidate pre-scan, which touches only rows that can
  fire a marker and falls back to the batched walk when it must
  decline;
* **sharded** — the segmented walk (``shards=4``, serial executor):
  per-segment boundary collection with exact seam fixups.

The gate order mirrors ``bench-profile-shards``: every variant must be
**bit-identical** to the scalar splitter on all four interval columns
*before* any timing counts, then the fast split must beat legacy by
>= 2x overall.  Numbers land in ``benchmarks/results/BENCH_split_*.json``.

``test_bench_split_smoke_regression`` is the CI guard: it re-checks
bit-identity on two workloads and fails if fast-split throughput fell
more than 20% below the committed baseline JSON.

``test_bench_split_shard_lanes_in_trace`` runs the sharded split under
a telemetry session and exports the stitched Chrome trace with the
per-segment ``shard N`` lanes to ``benchmarks/results/split_trace.jsonl``
— CI uploads it as an artifact.
"""

import json
import time
from pathlib import Path

import pytest

from repro.intervals import split_at_markers, split_at_markers_scalar
from repro.telemetry import telemetry_session, write_jsonl
from repro.workloads import all_workloads

RESULTS = Path(__file__).parent / "results"

SPLIT_SHARDS = 4
MARKER_VARIANT = "nolimit-self"


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _columns(intervals):
    return (
        intervals.row_bounds.tolist(),
        intervals.start_ts.tolist(),
        intervals.lengths.tolist(),
        intervals.phase_ids.tolist(),
    )


def test_bench_split_speedup(runner, results_dir):
    seconds = {"legacy": 0.0, "fast": 0.0, "sharded": 0.0}
    total_instructions = 0
    total_intervals = 0
    per_workload = {}

    for workload in all_workloads():
        spec = workload.name
        program = runner.program(spec)
        trace = runner.trace(spec)
        markers = runner.markers(spec, MARKER_VARIANT)

        legacy_s, legacy = _timed(
            lambda: split_at_markers_scalar(program, trace, markers)
        )
        fast_s, fast = _timed(
            lambda: split_at_markers(program, trace, markers)
        )
        shard_s, sharded = _timed(
            lambda: split_at_markers(
                program, trace, markers, shards=SPLIT_SHARDS
            )
        )

        # bit-identity gate: every fast path must reproduce the scalar
        # split exactly before its timing counts for anything
        want = _columns(legacy)
        assert _columns(fast) == want, spec
        assert _columns(sharded) == want, spec

        seconds["legacy"] += legacy_s
        seconds["fast"] += fast_s
        seconds["sharded"] += shard_s
        total_instructions += trace.total_instructions
        total_intervals += len(legacy)
        per_workload[spec] = {
            "legacy_seconds": legacy_s,
            "fast_seconds": fast_s,
            "sharded_seconds": shard_s,
            "intervals": len(legacy),
            "instructions": trace.total_instructions,
        }

    speedup = seconds["legacy"] / seconds["fast"]
    common = {
        "benchmark": (
            "VLI split over 16-workload corpus (ref traces, "
            f"{MARKER_VARIANT} markers)"
        ),
        "total_instructions": total_instructions,
        "total_intervals": total_intervals,
        "unit": "seconds (single pass per variant)",
    }
    (results_dir / "BENCH_split_legacy.json").write_text(
        json.dumps(
            {**common, "variant": "legacy (scalar per-event splitter)",
             "seconds": seconds["legacy"]},
            indent=2,
        )
        + "\n"
    )
    (results_dir / "BENCH_split_fast.json").write_text(
        json.dumps(
            {
                **common,
                "variant": "fast (vectorized candidate pre-scan)",
                "seconds": seconds["fast"],
                "sharded_seconds": seconds["sharded"],
                "speedup_vs_legacy": speedup,
                "sharded_speedup_vs_legacy": (
                    seconds["legacy"] / seconds["sharded"]
                ),
                "instructions_per_second": (
                    total_instructions / seconds["fast"]
                ),
                "per_workload": per_workload,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\nsplit: legacy {seconds['legacy']:.2f}s -> fast "
        f"{seconds['fast']:.2f}s ({speedup:.2f}x), sharded "
        f"{seconds['sharded']:.2f}s "
        f"({seconds['legacy'] / seconds['sharded']:.2f}x)"
    )
    assert speedup >= 2.0


SMOKE_SPECS = ("gzip", "vortex")


def test_bench_split_smoke_regression(runner):
    """Fast-split bit-identity plus a 20% throughput-regression gate
    against the committed ``BENCH_split_fast.json``."""
    baseline_path = RESULTS / "BENCH_split_fast.json"
    if not baseline_path.exists():
        pytest.skip(
            "no committed split baseline; run `make bench-split` first"
        )
    committed = json.loads(baseline_path.read_text())
    rows = [committed["per_workload"][name] for name in SMOKE_SPECS]
    baseline = sum(r["instructions"] for r in rows) / sum(
        r["fast_seconds"] for r in rows
    )

    instructions = 0
    seconds = 0.0
    for spec in SMOKE_SPECS:
        program = runner.program(spec)
        trace = runner.trace(spec)
        markers = runner.markers(spec, MARKER_VARIANT)
        want = _columns(split_at_markers_scalar(program, trace, markers))
        # median of 3 to damp scheduler noise on shared CI runners
        times = []
        for _ in range(3):
            fast_s, fast = _timed(
                lambda: split_at_markers(program, trace, markers)
            )
            times.append(fast_s)
            assert _columns(fast) == want, spec
        instructions += trace.total_instructions
        seconds += sorted(times)[1]
    throughput = instructions / seconds
    print(
        f"\nsplit smoke: {throughput / 1e6:.1f}M instr/s "
        f"(baseline {baseline / 1e6:.1f}M, floor {0.8 * baseline / 1e6:.1f}M)"
    )
    assert throughput >= 0.8 * baseline, (
        f"fast split regressed >20%: {throughput:.0f} instr/s vs "
        f"committed baseline {baseline:.0f}"
    )


def test_bench_split_shard_lanes_in_trace(runner, results_dir):
    """The sharded split stitches per-segment spans onto ``shard N``
    lanes; export the trace so CI uploads an inspectable timeline."""
    spec = "gzip"
    program = runner.program(spec)
    trace = runner.trace(spec)
    markers = runner.markers(spec, MARKER_VARIANT)
    want = _columns(split_at_markers_scalar(program, trace, markers))
    with telemetry_session() as tm:
        got = split_at_markers(
            program, trace, markers, shards=SPLIT_SHARDS, executor="threads"
        )
    assert _columns(got) == want
    write_jsonl(tm, results_dir / "split_trace.jsonl")
    assert any(
        label.startswith("shard ") for label in tm.lane_labels.values()
    ), "sharded split should stitch shard lanes into the trace"
    names = {s.name for s in tm.spans}
    assert "vli.split_segments" in names
    assert "vli.split_segment" in names
