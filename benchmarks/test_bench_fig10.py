"""Benchmark: regenerate Figure 10 (adaptive cache reconfiguration)."""

from conftest import save_table

from repro.experiments import fig10
from repro.reuse.phases import select_reuse_markers
from repro.workloads import CACHE_EVALUATION_SET


def test_bench_fig10(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: fig10.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "fig10_cache_sizes", table)
    save_table(results_dir, "fig10_miss_increase", fig10.run_miss_increase(runner))

    for spec in CACHE_EVALUATION_SET:
        row = fig10.row_for(runner, spec)
        best_fixed = row.sizes_kb["Best Fixed Size"]
        # headline claims: SPM reconfigures at or below the best fixed
        # size (small slack for the exploration intervals) without
        # increasing the miss rate beyond the tolerance; cross-input
        # markers match self-trained ones; SPM is competitive with the
        # reuse-distance approach
        assert row.sizes_kb["SPM-Self"] <= best_fixed * 1.1, spec
        assert row.miss_increase["SPM-Self"] <= fig10.TOLERANCE * 10, spec
        assert (
            abs(row.sizes_kb["SPM-Cross"] - row.sizes_kb["SPM-Self"])
            <= best_fixed * 0.15
        ), spec
        if row.sizes_kb["Reuse Distance"] is not None:
            assert (
                row.sizes_kb["SPM-Self"] <= row.sizes_kb["Reuse Distance"] * 1.25
            ), spec

    # the reuse-distance baseline works on most of the regular set...
    found = sum(
        row.sizes_kb["Reuse Distance"] is not None
        for row in (fig10.row_for(runner, s) for s in CACHE_EVALUATION_SET)
    )
    assert found >= 4
    # ...but struggles on the irregular programs (the gcc/vortex claim:
    # "they found it difficult to find structure in more complex programs
    # like gcc and vortex"): gcc fails outright, vortex is marginal at
    # best — far weaker structure than any regular program
    regular_compressions = [
        select_reuse_markers(
            runner.trace(s, "train"), runner.memory(s, "train")
        ).compression_ratio
        for s in ("swim/ref", "tomcatv/ref")
    ]
    gcc_detection = select_reuse_markers(
        runner.trace("gcc/166", "train"), runner.memory("gcc/166", "train")
    )
    assert not gcc_detection.structure_found
    vortex_detection = select_reuse_markers(
        runner.trace("vortex/one", "train"), runner.memory("vortex/one", "train")
    )
    assert vortex_detection.compression_ratio < min(regular_compressions)
    # while SPM still bounds the cache at or below best-fixed on both
    for spec in fig10.IRREGULAR_EXTENSION:
        row = fig10.row_for(runner, spec)
        assert row.sizes_kb["SPM-Self"] <= row.sizes_kb["Best Fixed Size"]
