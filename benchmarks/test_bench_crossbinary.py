"""Benchmark: regenerate the Section 6.2.1 cross-compilation check."""

from conftest import save_table

from repro.experiments import crossbin
from repro.workloads import SPEC_EVALUATION_SET


def test_bench_crossbinary(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: crossbin.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "sec621_cross_compilation", table)

    # headline claim: for every program and both builds, the marker
    # traces match exactly — same markers, same order
    for spec in SPEC_EVALUATION_SET:
        for variant in crossbin.VARIANTS:
            row = crossbin.check(runner, spec, variant)
            assert row.identical, (spec, variant.name)
            assert row.markers_unmapped == 0, (spec, variant.name)
