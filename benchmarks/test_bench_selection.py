"""Benchmark: the Section 5.1 selection-speed claim.

This one uses pytest-benchmark's statistics for real: marker selection
over the largest call-loop graph must run in far less than a second
(the paper: "seconds on every call-loop graph we have collected", for
full SPEC profiles)."""

from conftest import save_table

from repro.callloop import SelectionParams, select_markers
from repro.experiments import selection_time


def test_bench_selection_table(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: selection_time.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "sec51_selection_time", table)
    for spec in ("gcc/166", "galgel/ref"):
        timing = selection_time.measure(runner, spec)
        assert timing.nolimit_seconds < 0.1
        assert timing.limit_seconds < 0.1


def test_bench_selection_speed(benchmark, runner):
    graph = runner.graph("galgel/ref")  # the largest graph in the suite
    params = SelectionParams(ilower=runner.config.ilower)
    result = benchmark(lambda: select_markers(graph, params))
    assert len(result.markers) > 0
