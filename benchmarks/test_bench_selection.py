"""Benchmark: the Section 5.1 selection-speed claim, and the profile
acquisition modes of the parallel/cached execution layer.

Selection uses pytest-benchmark's statistics for real: marker selection
over the largest call-loop graph must run in far less than a second
(the paper: "seconds on every call-loop graph we have collected", for
full SPEC profiles).  The profile-modes table records what the
``repro.runner`` layer buys: serial vs parallel vs warm-cache wall
clock for the same set of profiles."""

import json
import time

from conftest import save_table

from repro.callloop import SelectionParams, select_markers, select_markers_scalar
from repro.experiments import selection_time
from repro.experiments.runner import Runner
from repro.runner import ProfileCache
from repro.util.tables import Table
from repro.workloads import all_workloads


def test_bench_selection_table(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: selection_time.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "sec51_selection_time", table)
    for spec in ("gcc/166", "galgel/ref"):
        timing = selection_time.measure(runner, spec)
        assert timing.nolimit_seconds < 0.1
        assert timing.limit_seconds < 0.1


def test_bench_selection_speed(benchmark, runner):
    graph = runner.graph("galgel/ref")  # the largest graph in the suite
    params = SelectionParams(ilower=runner.config.ilower)
    result = benchmark(lambda: select_markers(graph, params))
    assert len(result.markers) > 0


def test_bench_perf_selection_speedup(runner, results_dir):
    """Vectorized vs scalar selection over the full 16-workload corpus.

    One "pass" runs both selection passes on every corpus graph.  The
    scalar engine is the faithful pre-vectorization implementation
    (per-edge loops, uncached depth ordering); the vectorized engine is
    the shipping default.  Baseline and after numbers are committed as
    ``BENCH_selection_*.json``; the tentpole target is a >= 3x speedup.
    """
    specs = [w.spec_name for w in all_workloads()]
    graphs = [runner.graph(spec) for spec in specs]
    params = SelectionParams(ilower=runner.config.ilower)

    def run_pass(engine):
        for graph in graphs:
            engine(graph, params)

    def best_of(engine, rounds=5):
        run_pass(engine)  # warm caches / allocator
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            run_pass(engine)
            best = min(best, time.perf_counter() - start)
        return best

    scalar_s = best_of(select_markers_scalar)
    vector_s = best_of(select_markers)
    speedup = scalar_s / vector_s

    # both engines must agree on every corpus graph before the numbers count
    for graph in graphs:
        vec = select_markers(graph, params)
        ref = select_markers_scalar(graph, params)
        assert [m.edge_key for m in vec.markers] == [
            m.edge_key for m in ref.markers
        ]

    common = {
        "benchmark": "selection over 16-workload corpus",
        "workloads": specs,
        "unit": "seconds per full-corpus pass (best of 5)",
    }
    (results_dir / "BENCH_selection_baseline.json").write_text(
        json.dumps(
            {**common, "engine": "scalar", "seconds_per_pass": scalar_s},
            indent=2,
        )
        + "\n"
    )
    (results_dir / "BENCH_selection_vectorized.json").write_text(
        json.dumps(
            {
                **common,
                "engine": "vectorized",
                "seconds_per_pass": vector_s,
                "speedup_vs_scalar": speedup,
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"\nselection: scalar {scalar_s * 1e3:.2f}ms -> "
        f"vectorized {vector_s * 1e3:.2f}ms per pass ({speedup:.1f}x)"
    )
    assert speedup >= 3.0


def test_bench_profile_modes(results_dir, tmp_path):
    """Serial vs parallel vs warm-cache acquisition of the same profiles."""
    pairs = [("gzip/graphic", "ref"), ("vortex/one", "ref"), ("tomcatv/ref", "ref")]
    cache_dir = tmp_path / "profile-cache"

    def timed(mode_runner, jobs):
        start = time.perf_counter()
        profiled = mode_runner.prefetch_graphs(pairs, jobs=jobs)
        return time.perf_counter() - start, profiled

    serial_s, serial_n = timed(Runner(), 1)
    parallel_s, parallel_n = timed(Runner(), 2)
    cold = Runner(cache=ProfileCache(cache_dir))
    cold.prefetch_graphs(pairs, jobs=1)
    warm = Runner(cache=ProfileCache(cache_dir))
    warm_s, warm_n = timed(warm, 1)

    table = Table(
        "Profile acquisition modes (3 workloads)",
        ["mode", "seconds", "profiled", "cache hits"],
        digits=3,
    )
    table.add_row(["serial", serial_s, serial_n, 0])
    table.add_row(["parallel (2 jobs)", parallel_s, parallel_n, 0])
    table.add_row(["warm cache", warm_s, warm_n, warm.cache.hits])
    save_table(results_dir, "profile_modes", table)

    assert serial_n == parallel_n == len(pairs)
    assert warm_n == 0  # every profile served from disk
    assert warm.cache.hits == len(pairs)
    assert warm_s < serial_s  # cache load is far cheaper than re-profiling
