"""Benchmark: the Section 5.1 selection-speed claim, and the profile
acquisition modes of the parallel/cached execution layer.

Selection uses pytest-benchmark's statistics for real: marker selection
over the largest call-loop graph must run in far less than a second
(the paper: "seconds on every call-loop graph we have collected", for
full SPEC profiles).  The profile-modes table records what the
``repro.runner`` layer buys: serial vs parallel vs warm-cache wall
clock for the same set of profiles."""

import time

from conftest import save_table

from repro.callloop import SelectionParams, select_markers
from repro.experiments import selection_time
from repro.experiments.runner import Runner
from repro.runner import ProfileCache
from repro.util.tables import Table


def test_bench_selection_table(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: selection_time.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "sec51_selection_time", table)
    for spec in ("gcc/166", "galgel/ref"):
        timing = selection_time.measure(runner, spec)
        assert timing.nolimit_seconds < 0.1
        assert timing.limit_seconds < 0.1


def test_bench_selection_speed(benchmark, runner):
    graph = runner.graph("galgel/ref")  # the largest graph in the suite
    params = SelectionParams(ilower=runner.config.ilower)
    result = benchmark(lambda: select_markers(graph, params))
    assert len(result.markers) > 0


def test_bench_profile_modes(results_dir, tmp_path):
    """Serial vs parallel vs warm-cache acquisition of the same profiles."""
    pairs = [("gzip/graphic", "ref"), ("vortex/one", "ref"), ("tomcatv/ref", "ref")]
    cache_dir = tmp_path / "profile-cache"

    def timed(mode_runner, jobs):
        start = time.perf_counter()
        profiled = mode_runner.prefetch_graphs(pairs, jobs=jobs)
        return time.perf_counter() - start, profiled

    serial_s, serial_n = timed(Runner(), 1)
    parallel_s, parallel_n = timed(Runner(), 2)
    cold = Runner(cache=ProfileCache(cache_dir))
    cold.prefetch_graphs(pairs, jobs=1)
    warm = Runner(cache=ProfileCache(cache_dir))
    warm_s, warm_n = timed(warm, 1)

    table = Table(
        "Profile acquisition modes (3 workloads)",
        ["mode", "seconds", "profiled", "cache hits"],
        digits=3,
    )
    table.add_row(["serial", serial_s, serial_n, 0])
    table.add_row(["parallel (2 jobs)", parallel_s, parallel_n, 0])
    table.add_row(["warm cache", warm_s, warm_n, warm.cache.hits])
    save_table(results_dir, "profile_modes", table)

    assert serial_n == parallel_n == len(pairs)
    assert warm_n == 0  # every profile served from disk
    assert warm.cache.hits == len(pairs)
    assert warm_s < serial_s  # cache load is far cheaper than re-profiling
