"""Benchmark: regenerate Figures 5/6 (bzip2 3D projections)."""

from conftest import save_table

from repro.experiments import fig56


def test_bench_fig56(benchmark, runner, results_dir):
    table = benchmark.pedantic(
        lambda: fig56.run(runner), rounds=1, iterations=1
    )
    save_table(results_dir, "fig56_projection_bzip2", table)
    result = fig56.run_analysis(runner)
    # headline claim: VLI clouds are far tighter than fixed-length ones
    assert result.vli_tightness < result.fixed_tightness / 5
