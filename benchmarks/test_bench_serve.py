"""Serving benchmark: ``repro serve`` under the MLPerf-style loadgen.

``make bench-serve`` boots the real server in-process (process-pool
backend, warm shared cache/trace stores) and drives both loadgen
scenarios against it:

* **Server** — open-loop Poisson arrivals at ``TARGET_QPS`` with
  ``--check``-style byte verification of every response.  Gates: zero
  errors, zero byte mismatches, achieved QPS >= 90% of target.
* **SingleStream** — closed loop, one outstanding query; pins the
  best-case round-trip latency.

Numbers land in ``benchmarks/results/BENCH_serve_server.json`` and
``BENCH_serve_singlestream.json``; a stitched telemetry trace of the
Server run (request spans on the serve lane + merged worker compute
spans) is exported to ``BENCH_serve_trace.jsonl`` for the CI artifact.

``test_bench_serve_smoke_regression`` is the CI guard: a short Server
run that fails if achieved QPS drops below 90% of the committed
baseline's target or p99 latency grows past 2.5x the committed p99
(latency gates are generous — shared CI runners are noisy; the QPS gate
is the hard one).
"""

import json
from pathlib import Path

import pytest

from repro.serving import (
    LoadGenSettings,
    PhaseMarkerServer,
    Query,
    expected_payloads,
)

RESULTS = Path(__file__).parent / "results"

WORKLOADS = ("compress95", "tomcatv")
TARGET_QPS = 60.0
SEED = 0


def bench_queries():
    return [
        Query(kind=kind, workload=workload)
        for workload in WORKLOADS
        for kind in ("markers", "profile")
    ]


@pytest.fixture(scope="module")
def serve_dirs(tmp_path_factory):
    """Warm shared stores: the bench measures serving, not cold profiling."""
    root = tmp_path_factory.mktemp("bench-serve")
    cache_dir, trace_root = str(root / "cache"), str(root / "traces")
    expected = expected_payloads(
        bench_queries(), cache_dir=cache_dir, trace_root=trace_root
    )
    return cache_dir, trace_root, expected


def _run_scenario(serve_dirs, settings, check=True, telemetry_to=None):
    import asyncio

    from repro import telemetry

    cache_dir, trace_root, expected = serve_dirs

    async def main():
        server = PhaseMarkerServer(
            port=0, jobs=2, cache_dir=cache_dir, trace_root=trace_root
        )
        await server.start()
        try:
            from repro.serving import run_loadgen_async

            return await run_loadgen_async(
                server.host,
                server.port,
                bench_queries(),
                settings,
                expected=expected if check else None,
            )
        finally:
            await server.shutdown()

    if telemetry_to is None:
        return asyncio.run(main())
    tm = telemetry.enable_telemetry()
    try:
        summary = asyncio.run(main())
    finally:
        telemetry.disable_telemetry()
    from repro.telemetry import write_jsonl

    write_jsonl(tm, telemetry_to)
    return summary


def test_bench_serve_scenarios(serve_dirs, results_dir):
    server_settings = LoadGenSettings(
        scenario="server",
        target_qps=TARGET_QPS,
        max_async_queries=32,
        min_duration_s=2.0,
        max_duration_s=20.0,
        min_queries=100,
        seed=SEED,
    )
    single_settings = LoadGenSettings(
        scenario="singlestream",
        target_qps=TARGET_QPS,  # unused by the closed loop; kept for the record
        min_duration_s=1.0,
        max_duration_s=20.0,
        min_queries=50,
        seed=SEED,
    )

    trace_path = results_dir / "BENCH_serve_trace.jsonl"
    server_summary = _run_scenario(
        serve_dirs, server_settings, telemetry_to=trace_path
    )
    single_summary = _run_scenario(serve_dirs, single_settings)

    for name, summary in (
        ("server", server_summary),
        ("singlestream", single_summary),
    ):
        doc = {
            "benchmark": (
                "repro serve (2 pool workers, warm cache) under "
                f"loadgen {name} scenario, seed {SEED}"
            ),
            "queries": [q.label() for q in bench_queries()],
            **summary.as_dict(),
        }
        (results_dir / f"BENCH_serve_{name}.json").write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        (results_dir / f"serve_{name}.txt").write_text(
            summary.render() + "\n"
        )
        print()
        print(summary.render())

    # the acceptance gates: byte-perfect answers at (>= 90% of) target rate
    assert server_summary.errors == 0
    assert server_summary.check_mismatches == 0
    assert server_summary.achieved_qps >= 0.9 * TARGET_QPS
    assert single_summary.errors == 0
    assert single_summary.check_mismatches == 0
    assert trace_path.exists()


def test_bench_serve_smoke_regression(serve_dirs):
    """Short Server run gated on the committed baseline (the CI job)."""
    baseline_path = RESULTS / "BENCH_serve_server.json"
    if not baseline_path.exists():
        pytest.skip(
            "no committed serve baseline; run `make bench-serve` first"
        )
    committed = json.loads(baseline_path.read_text())

    settings = LoadGenSettings(
        scenario="server",
        target_qps=committed["target_qps"],
        max_async_queries=32,
        min_duration_s=0.5,
        max_duration_s=10.0,
        min_queries=30,
        seed=SEED,
    )
    summary = _run_scenario(serve_dirs, settings)
    qps_floor = 0.9 * committed["target_qps"]
    p99_ceiling = 2.5 * committed["latency_ms"]["p99"]
    print(
        f"\nserve smoke: {summary.achieved_qps:.1f} QPS "
        f"(floor {qps_floor:.1f}), p99 {summary.p99_ms:.2f} ms "
        f"(ceiling {p99_ceiling:.2f})"
    )
    assert summary.errors == 0
    assert summary.check_mismatches == 0
    assert summary.achieved_qps >= qps_floor, (
        f"serve throughput regressed: {summary.achieved_qps:.1f} QPS vs "
        f"floor {qps_floor:.1f}"
    )
    assert summary.p99_ms <= p99_ceiling, (
        f"serve p99 regressed: {summary.p99_ms:.2f} ms vs committed "
        f"{committed['latency_ms']['p99']:.2f} ms (ceiling {p99_ceiling:.2f})"
    )
