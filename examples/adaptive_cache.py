#!/usr/bin/env python
"""Phase-driven adaptive cache reconfiguration (the paper's Section 6.1).

Scenario: an embedded/power-aware core can resize its data cache between
32KB and 256KB (512 sets, 64B lines, 1..8 ways).  Phase markers fire at
code boundaries; the controller explores configurations during a phase's
first two intervals and then locks in the smallest configuration that
does not increase the miss rate.

The example runs the protocol on the swim-like workload — streaming
stencil sweeps that need a large cache interleaved with a compact
boundary phase that doesn't — and reports the average cache size against
the best fixed configuration, plus what happens across inputs (markers
selected on `train`, deployed on `ref`).

Run:  python examples/adaptive_cache.py
"""

import numpy as np

from repro import (
    Machine,
    SelectionParams,
    build_call_loop_graph,
    record_trace,
    select_markers,
    split_at_markers,
    attach_metrics,
)
from repro.cache.reconfig import adaptive_average_size, best_fixed_ways
from repro.workloads import get_workload

WAY_KB = 32.0  # 512 sets x 64B per way
TOLERANCE = 0.002


def reconfigure(program, program_input, markers):
    trace = record_trace(Machine(program, program_input).run())
    intervals = split_at_markers(program, trace, markers)
    profile = attach_metrics(intervals, trace, program, program_input)
    result = adaptive_average_size(
        intervals.phase_ids,
        intervals.lengths,
        profile.accesses,
        profile.hits,
        tolerance=TOLERANCE,
    )
    fixed_ways = best_fixed_ways(profile.accesses, profile.hits, TOLERANCE)
    return result, fixed_ways * WAY_KB, intervals


def main() -> None:
    workload = get_workload("swim")
    program = workload.build()
    print(f"workload: {workload.spec_name} — {workload.description}\n")

    for trained_on in ("ref", "train"):
        graph = build_call_loop_graph(program, [workload.inputs[trained_on]])
        markers = select_markers(graph, SelectionParams(ilower=10_000)).markers
        result, best_fixed_kb, intervals = reconfigure(
            program, workload.ref_input, markers
        )
        sizes, counts = np.unique(result.ways_per_interval, return_counts=True)
        histogram = ", ".join(
            f"{int(w) * 32}KB x{c}" for w, c in zip(sizes, counts)
        )
        print(f"markers selected on '{trained_on}', deployed on 'ref':")
        print(f"  {len(markers)} markers -> {len(intervals)} intervals")
        print(f"  configurations used: {histogram}")
        print(f"  average cache size:  {result.avg_size_kb:6.1f} KB")
        print(f"  best fixed size:     {best_fixed_kb:6.1f} KB")
        print(f"  miss-rate increase:  {result.miss_increase:.3%}\n")


if __name__ == "__main__":
    main()
