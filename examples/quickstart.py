#!/usr/bin/env python
"""Quickstart: select software phase markers for a program and inspect
the phases they define.

This walks the paper's core pipeline on the bundled gzip-like workload:

1. build the program ("binary") and run it to record a trace;
2. profile the trace into the hierarchical call-loop graph;
3. select phase markers with the two-pass algorithm (Section 5.1);
4. cut the run into variable-length intervals at marker executions and
   attach CPI / data-cache metrics;
5. show that intervals sharing a phase id behave homogeneously.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Machine,
    SelectionParams,
    build_call_loop_graph,
    record_trace,
    select_markers,
    split_at_markers,
    attach_metrics,
)
from repro.analysis import phase_cov, whole_program_cov
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("gzip")
    program = workload.build()
    print(f"workload: {workload.spec_name} — {workload.description}")

    # 1. execute and record
    trace = record_trace(Machine(program, workload.ref_input).run())
    print(f"executed {trace.total_instructions:,} instructions")

    # 2. profile the call-loop graph
    graph = build_call_loop_graph(program, [workload.ref_input])
    print(graph.summary())

    # 3. select markers (minimum interval size: 10K instructions at the
    #    repository's 1/1000 scale; the paper used 10M)
    result = select_markers(graph, SelectionParams(ilower=10_000))
    print(f"\nselected {len(result.markers)} software phase markers:")
    for marker in result.markers:
        print(
            f"  {marker.describe():58s} "
            f"avg interval {marker.avg_interval:>9,.0f}  CoV {marker.cov:.3f}"
        )

    # 4. split execution at marker firings and measure each interval
    intervals = split_at_markers(program, trace, result.markers)
    attach_metrics(intervals, trace, program, workload.ref_input)
    print(
        f"\n{len(intervals)} variable-length intervals, "
        f"{intervals.num_phases} phases, "
        f"average length {intervals.average_length:,.0f} instructions"
    )

    # 5. per-phase homogeneity: same phase => same behavior
    cov = phase_cov(intervals)
    print(f"\nper-phase CPI behavior (whole-program CoV would be "
          f"{whole_program_cov(intervals):.1%}):")
    for phase in sorted(cov.per_phase):
        mask = intervals.phase_ids == phase
        mean_cpi = float(np.average(intervals.cpis[mask],
                                    weights=intervals.lengths[mask]))
        print(
            f"  phase {phase:2d}: {mask.sum():3d} intervals  "
            f"mean CPI {mean_cpi:5.2f}  CoV {cov.per_phase[phase]:6.2%}  "
            f"({cov.phase_weights[phase]:5.1%} of execution)"
        )
    print(f"\noverall within-phase CoV of CPI: {cov.overall:.2%}")


if __name__ == "__main__":
    main()
