#!/usr/bin/env python
"""Cross-binary simulation points (the paper's Sections 6.2 and 6.2.1).

Scenario: an architecture study recompiles a benchmark (new optimization
level, even a new ISA) and wants to keep simulating *the same portions of
execution*.  Fixed-length simulation points break immediately — offsets
shift.  Marker-based simulation points survive: markers anchor to source
structure, so the same markers fire in the same order in every build.

The example:

1. selects limit markers (bounded interval size) on the base binary;
2. runs VLI SimPoint to pick simulation points;
3. recompiles at -O0 and at peak optimization, maps the markers through
   source locations, and verifies the marker traces are identical —
   which lets each simulation point be located in the new binaries by
   its firing index.

Run:  python examples/cross_binary_simpoints.py
"""

from repro import (
    LimitParams,
    Machine,
    build_call_loop_graph,
    map_markers,
    marker_trace,
    record_trace,
    select_markers_with_limit,
    split_at_markers,
    attach_metrics,
)
from repro.callloop.crossbinary import traces_identical
from repro.ir.linker import ALPHA_O0, ALPHA_PEAK, link
from repro.simpoint import SimPointOptions, filter_by_coverage, run_simpoint_on_intervals
from repro.simpoint.error import estimate_metric, relative_error, true_weighted_metric
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("mgrid")
    base = workload.build()
    ref = workload.ref_input
    print(f"workload: {workload.spec_name}\n")

    # 1. markers with a bounded maximum interval size (Section 5.2)
    graph = build_call_loop_graph(base, [ref])
    markers = select_markers_with_limit(
        graph, LimitParams(ilower=10_000, max_limit=200_000)
    ).markers
    print(f"{len(markers)} limit markers selected on the base binary")

    # 2. VLI SimPoint on the base binary
    trace = record_trace(Machine(base, ref).run())
    intervals = split_at_markers(base, trace, markers)
    attach_metrics(intervals, trace, base, ref)
    result = run_simpoint_on_intervals(
        intervals, SimPointOptions(k_max=30), weighted=True
    )
    coverage = filter_by_coverage(result, intervals, 0.99)
    true_cpi = true_weighted_metric(intervals, intervals.cpis)
    est_cpi = estimate_metric(coverage, intervals.cpis)
    print(
        f"SimPoint: {result.k} phases, {len(coverage.sim_point_indices)} "
        f"simulation points cover {coverage.coverage:.1%} of execution"
    )
    print(
        f"simulate {coverage.simulated_instructions:,} of "
        f"{trace.total_instructions:,} instructions -> CPI error "
        f"{relative_error(est_cpi, true_cpi):.2%}\n"
    )

    # 3. the same simulation points on recompiled binaries
    base_firings = marker_trace(base, ref, markers, trace=trace)
    for variant in (ALPHA_O0, ALPHA_PEAK):
        target = link(base, variant)
        report = map_markers(markers, target)
        target_firings = marker_trace(target, ref, report.markers)
        identical = traces_identical(base_firings, target_firings)
        print(
            f"{variant.name:12s}: {len(report.mapped)}/{len(markers)} markers "
            f"mapped via source, {len(target_firings)} firings, "
            f"order identical: {identical}"
        )
        assert identical, "simulation points would not transfer!"
    print(
        "\nevery simulation point can be located in the recompiled binaries "
        "by its marker firing index — the same source-level execution region "
        "is simulated in every build."
    )


if __name__ == "__main__":
    main()
