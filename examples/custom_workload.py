#!/usr/bin/env python
"""Analyzing your own program with the phase-marker pipeline.

Scenario: you have an application (here: a small ray-tracer-like batch
renderer built with the IR DSL) and want to know its phase structure —
where to place instrumentation hooks, which code regions behave
homogeneously, and how its behavior decomposes.

The example also contrasts the full algorithm with the procedures-only
configuration to show why loops matter (the paper's Section 4.1): the
renderer keeps its hot work inside main's loop nests, so procedure-level
analysis sees almost nothing.

Run:  python examples/custom_workload.py
"""

from repro import (
    Machine,
    ProgramBuilder,
    ProgramInput,
    SelectionParams,
    build_call_loop_graph,
    record_trace,
    select_markers,
    split_at_markers,
    attach_metrics,
    validate_program,
)
from repro.analysis import phase_cov
from repro.ir import NormalTrips


def build_renderer():
    """A batch renderer: per frame, trace rays, shade, then post-process."""
    b = ProgramBuilder("renderer", source_file="render.c")
    with b.proc("main"):
        b.code(30, loads=8, mem=b.seq("scene", 1 << 20), label="load_scene")
        with b.loop("frames", trips="frames"):
            # hot loops live directly in main — procedures alone can't
            # split this program's execution
            with b.loop("trace_rays", trips=NormalTrips("rays", 0.02)):
                b.code(14, loads=6, fp=0.6, mem=b.chase("bvh", 192 * 1024),
                       label="intersect")
            with b.loop("shade", trips=NormalTrips("pixels", 0.02)):
                b.code(11, loads=4, stores=2, fp=0.7,
                       mem=b.wset("textures", 96 * 1024), label="shade_pixel")
            with b.loop("postfx", trips=NormalTrips("pixels", 0.02)):
                b.code(8, loads=2, stores=3, fp=0.5,
                       mem=b.seq("framebuffer", 1 << 18, stride=64),
                       label="tonemap")
        b.code(12, stores=3, label="flush_output")
    return b.build()


def main() -> None:
    program = build_renderer()
    validate_program(program)
    scene = ProgramInput("shot42", {"frames": 25, "rays": 900, "pixels": 700},
                         seed=11)

    trace = record_trace(Machine(program, scene).run())
    graph = build_call_loop_graph(program, [scene])
    print(graph.summary(), "\n")

    for label, params in (
        ("procedures only", SelectionParams(ilower=10_000, procedures_only=True)),
        ("procedures + loops", SelectionParams(ilower=10_000)),
    ):
        markers = select_markers(graph, params).markers
        intervals = split_at_markers(program, trace, markers)
        attach_metrics(intervals, trace, program, scene)
        cov = phase_cov(intervals)
        print(f"{label}:")
        print(f"  markers: {len(markers)}, phases: {intervals.num_phases}, "
              f"avg interval {intervals.average_length:,.0f} instructions")
        print(f"  within-phase CoV of CPI: {cov.overall:.2%}")
        for marker in markers:
            if marker.avg_interval < trace.total_instructions * 0.5:
                print(f"    instrument at: {marker.describe()}")
        print()

    print("the loop-level markers expose the per-frame ray/shade/postfx "
          "phases that procedure-level analysis cannot see.")


if __name__ == "__main__":
    main()
