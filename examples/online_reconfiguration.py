#!/usr/bin/env python
"""An online reconfiguration controller driven by phase markers.

Scenario: a processor that can resize its data cache wants to switch
configurations *while the program runs*, with the next configuration
staged before each phase begins.  Phase markers make this software-only:

1. markers are selected offline (here: loaded the way a deployed tool
   would, via the JSON marker file);
2. at run time a :class:`PhaseMonitor` watches the execution stream and
   fires a callback at every phase change;
3. the controller keeps a per-phase configuration table (explore twice,
   then lock in) and an order-1 Markov predictor to pre-stage the next
   phase's configuration.

Run:  python examples/online_reconfiguration.py
"""

import tempfile
from collections import defaultdict
from pathlib import Path

from repro import (
    Machine,
    SelectionParams,
    build_call_loop_graph,
    select_markers,
)
from repro.callloop.serialization import load_markers, save_markers
from repro.runtime import MarkovPredictor, PhaseMonitor
from repro.workloads import get_workload


class CacheController:
    """Toy controller: per-phase cache size with Markov pre-staging."""

    #: pretend sizes (KB) a phase might need, assigned on first sighting
    EXPLORE_SIZE = 256

    def __init__(self):
        self.table = {}  # phase -> decided size
        self.sightings = defaultdict(int)
        self.predictor = MarkovPredictor(order=1)
        self.staged = None
        self.prestage_hits = 0
        self.reconfigurations = 0

    def on_phase_change(self, change):
        phase = change.new_phase
        # was the right configuration already staged?
        if self.staged == phase:
            self.prestage_hits += 1
        self.reconfigurations += 1
        # a phase just *ended*: we now know how long it ran, so decide
        # its configuration after two completed sightings (short phases
        # here get the small cache; a real controller would use miss
        # counts, as in benchmarks/test_bench_fig10.py)
        ended = change.previous_phase
        self.sightings[ended] += 1
        if self.sightings[ended] == 2:
            self.table[ended] = 64 if change.time_in_previous < 20_000 else 192
        # predict and pre-stage the next phase's configuration
        self.predictor.observe(phase)
        self.staged = self.predictor.predict()

    def size_for(self, phase):
        return self.table.get(phase, self.EXPLORE_SIZE)


def main() -> None:
    workload = get_workload("gzip")
    program = workload.build()

    # offline: select markers and ship them as a marker file
    graph = build_call_loop_graph(program, [workload.train_input])
    markers = select_markers(graph, SelectionParams(ilower=10_000)).markers
    marker_file = Path(tempfile.gettempdir()) / "gzip_markers.json"
    save_markers(markers, marker_file)
    print(f"shipped {len(markers)} markers (selected on train) to {marker_file}")

    # online: load the file and run the controller against the ref input
    deployed = load_markers(marker_file)
    controller = CacheController()
    monitor = PhaseMonitor(
        program, deployed, on_change=controller.on_phase_change,
        min_interval=1_000,
    )
    total = monitor.run(Machine(program, workload.ref_input).run())

    print(f"\nran {total:,} instructions with {controller.reconfigurations} "
          f"phase changes")
    print(f"phases seen: {sorted(controller.sightings)}")
    print("decided configurations:")
    for phase, size in sorted(controller.table.items()):
        share = monitor.time_in_phase.get(phase, 0) / total
        print(f"  phase {phase:3d}: {size:3d}KB  ({share:5.1%} of execution)")
    rate = controller.prestage_hits / max(1, controller.reconfigurations)
    print(f"\nMarkov pre-staging hit rate: {rate:.1%} — the next phase's "
          f"configuration was usually ready before the phase began")


if __name__ == "__main__":
    main()
