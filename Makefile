PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-telemetry clean-cache

# tier-1 verification: the full unit / integration / property suite
test:
	$(PYTHON) -m pytest -x -q

# regenerate every paper table & figure (writes benchmarks/results/*.txt)
bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

# one small experiment through the parallel (2 jobs) + cached path
bench-smoke:
	$(PYTHON) -m pytest benchmarks -q -k smoke

# telemetry-overhead smoke check: instrumented run must stay within 10%
bench-telemetry:
	$(PYTHON) -m pytest benchmarks -q -k telemetry

# drop the default on-disk profile cache
clean-cache:
	$(PYTHON) -c "from repro.runner import ProfileCache; c = ProfileCache(); c.clear(); print('cleared', c.root)"
