PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-perf bench-e2e bench-profile-shards bench-split bench-telemetry bench-serve bench-stream clean-cache verify verify-fuzz verify-stream refresh-golden

# seeded fuzz iterations for the long loop (override: make verify-fuzz FUZZ_ITERS=5000)
FUZZ_ITERS ?= 1000
FUZZ_SEED ?= 0

# tier-1 verification: the full unit / integration / property suite
test:
	$(PYTHON) -m pytest -x -q

# regenerate every paper table & figure (writes benchmarks/results/*.txt)
bench:
	$(PYTHON) -m pytest benchmarks -q --benchmark-only

# one small experiment through the parallel (2 jobs) + cached path;
# exports the stitched trace + metrics series to benchmarks/results/
bench-smoke:
	$(PYTHON) -m pytest benchmarks -q -k smoke

# scalar-vs-vectorized speed checks; refreshes benchmarks/results/BENCH_*.json
bench-perf:
	$(PYTHON) -m pytest benchmarks -q -k perf

# end-to-end trace-pipeline speedup (legacy vs fast over the full corpus);
# refreshes benchmarks/results/BENCH_e2e_*.json
bench-e2e:
	$(PYTHON) -m pytest benchmarks -q -k e2e

# profile-stage speedup: Welford walk vs exact moments vs 4-shard walk,
# with shard-merge bit-identity gates; refreshes
# benchmarks/results/BENCH_profile_shards_*.json
bench-profile-shards:
	$(PYTHON) -m pytest benchmarks -q -k profile_shards

# split-stage speedup: scalar splitter vs pre-scan vs 4-segment walk,
# with bit-identity gates on every interval column; refreshes
# benchmarks/results/BENCH_split_*.json and the shard-lane trace
bench-split:
	$(PYTHON) -m pytest benchmarks -q -k bench_split

# telemetry-overhead smoke check: spans + cross-worker stitching + the
# background sampler together must stay within 10% of an uninstrumented
# run; also reconciles stats --critical-path attribution with the wall
bench-telemetry:
	$(PYTHON) -m pytest benchmarks -q -k telemetry

# serving benchmark: repro serve under the loadgen Server + SingleStream
# scenarios with byte verification; refreshes
# benchmarks/results/BENCH_serve_*.json and the stitched serve trace
bench-serve:
	$(PYTHON) -m pytest benchmarks -q -k serve

# streaming-feed overhead + bounded-memory gates; refreshes
# benchmarks/results/BENCH_stream_*.json
bench-stream:
	$(PYTHON) -m pytest benchmarks -q -k bench_stream

# differential-oracle verification: golden corpus + streaming equivalence
# + short fuzz smoke (~CI budget)
verify:
	$(PYTHON) -m repro verify --seed $(FUZZ_SEED) --iters 50

# the long seeded fuzz loop (nightly-style; corpus passes skipped —
# diff_streaming still rides every fuzz iteration)
verify-fuzz:
	$(PYTHON) -m repro verify --skip-golden --skip-streaming --seed $(FUZZ_SEED) --iters $(FUZZ_ITERS)

# just the streaming-vs-batch equivalence pass over the workload corpus
verify-stream:
	$(PYTHON) -m repro verify --skip-golden --iters 0

# ratify intentional algorithm changes by regenerating tests/golden/
refresh-golden:
	$(PYTHON) -m repro verify --refresh-golden --iters 0

# drop the default on-disk profile cache
clean-cache:
	$(PYTHON) -c "from repro.runner import ProfileCache; c = ProfileCache(); c.clear(); print('cleared', c.root)"
